//! Standard-form matrix and basis bookkeeping for the revised simplex.
//!
//! [`StandardForm`] turns a [`Model`](crate::Model) into the equality
//! form `A·x = b`, `l ≤ x ≤ u` the revised simplex works on:
//!
//! * one row per model constraint — variable upper bounds are **not**
//!   materialised as rows (they live in the column bounds and are
//!   enforced by the bounded ratio test), which halves `m` versus the
//!   dense tableau for the replica-placement LPs;
//! * one slack column per row with bounds that encode the comparison
//!   direction: `[0, ∞)` for `≤`, `(-∞, 0]` for `≥`, `[0, 0]` for `=`.
//!   With a `+1` coefficient everywhere the all-slack basis is the
//!   identity;
//! * artificial columns are appended per solve, only for rows whose
//!   initial slack value violates the slack bounds.
//!
//! [`BasisState`] tracks which column is basic in which row, the
//! at-lower/at-upper status of every nonbasic column, and the values of
//! the basic variables.
//!
//! [`Presolve`] shrinks the problem *before* the standard form is
//! built: singleton rows become bound tightenings, redundant and
//! forcing constraints (zero-request clients, saturated capacities,
//! nodes without eligible clients) are eliminated together with the
//! variables they pin, and empty or singleton columns are fixed at
//! their optimal bound. [`StandardForm::build_reduced`] then assembles
//! the equality form over the surviving rows and columns only, and the
//! postsolve step in the driver restores every eliminated variable.

use crate::model::{Cmp, Model, Sense};
use crate::revised::scaling::{self, Scaling};

/// Slack-variable bounds encoding a constraint's comparison direction.
fn slack_bounds(cmp: Cmp) -> (f64, f64) {
    match cmp {
        Cmp::Le => (0.0, f64::INFINITY),
        Cmp::Ge => (f64::NEG_INFINITY, 0.0),
        Cmp::Eq => (0.0, 0.0),
    }
}

/// Dense column index ranges: `0..n_struct` structural,
/// `n_struct..n_struct + m` slacks, the rest artificials.
#[derive(Default)]
pub(crate) struct StandardForm {
    /// Rows (model constraints).
    pub(crate) m: usize,
    /// Structural columns (model variables).
    pub(crate) n_struct: usize,
    /// CSC of the structural columns.
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) col_rows: Vec<u32>,
    pub(crate) col_vals: Vec<f64>,
    /// CSR mirror (structural columns only), used by the crash basis.
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) row_cols: Vec<u32>,
    pub(crate) row_vals: Vec<f64>,
    /// Per-column bounds, including slacks and artificials.
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    /// Phase-2 cost per column (sense-normalised to minimisation;
    /// slacks and artificials cost 0).
    pub(crate) cost: Vec<f64>,
    /// Right-hand sides.
    pub(crate) rhs: Vec<f64>,
    /// Rows of the artificial columns (one row each, coefficient
    /// `art_sign`), appended per solve.
    pub(crate) art_rows: Vec<usize>,
    pub(crate) art_signs: Vec<f64>,
    /// Set when a variable's bounds are inverted (`ub < lb`): the LP is
    /// trivially infeasible.
    pub(crate) trivially_infeasible: bool,
    /// Whether the stored matrix, bounds, costs and right-hand sides
    /// are equilibrated (see [`StandardForm::apply_scaling`]).
    pub(crate) scaled: bool,
    /// Power-of-two row scales `r_i` (empty unless `scaled`).
    pub(crate) row_scale: Vec<f64>,
    /// Power-of-two structural column scales `c_j` (empty unless
    /// `scaled`).
    pub(crate) col_scale: Vec<f64>,
    /// Entry spread `max|a|/min|a|` before / after the scaling pass
    /// (diagnostics for the scenario benchmarks).
    pub(crate) spread_before: f64,
    pub(crate) spread_after: f64,
}

impl StandardForm {
    /// Total number of columns currently defined.
    pub(crate) fn num_cols(&self) -> usize {
        self.n_struct + self.m + self.art_rows.len()
    }

    /// First artificial column index.
    pub(crate) fn art_base(&self) -> usize {
        self.n_struct + self.m
    }

    /// `true` for slack or structural columns whose bounds pin them
    /// (`ub − lb ≤ 0`): they can never usefully enter the basis.
    pub(crate) fn is_fixed(&self, col: usize) -> bool {
        self.upper[col] - self.lower[col] <= 0.0
    }

    /// Rebuilds the standard form from `model`, reusing every buffer.
    pub(crate) fn build(&mut self, model: &Model) {
        let n = model.num_vars();
        let m = model.num_constraints();
        self.m = m;
        self.n_struct = n;
        self.art_rows.clear();
        self.art_signs.clear();
        self.trivially_infeasible = false;
        self.reset_scaling();

        // CSC from the row-wise constraints: count, prefix, fill.
        self.col_ptr.clear();
        self.col_ptr.resize(n + 1, 0);
        for c in &model.constraints {
            for &(var, _) in &c.terms {
                self.col_ptr[var.index() + 1] += 1;
            }
        }
        for j in 0..n {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        let nnz = self.col_ptr[n];
        self.col_rows.clear();
        self.col_rows.resize(nnz, 0);
        self.col_vals.clear();
        self.col_vals.resize(nnz, 0.0);
        // `col_ptr[j]` doubles as the fill cursor for column j; restore
        // it afterwards by shifting back.
        for (row, c) in model.constraints.iter().enumerate() {
            for &(var, coeff) in &c.terms {
                let slot = self.col_ptr[var.index()];
                self.col_rows[slot] = row as u32;
                self.col_vals[slot] = coeff;
                self.col_ptr[var.index()] += 1;
            }
        }
        for j in (1..=n).rev() {
            self.col_ptr[j] = self.col_ptr[j - 1];
        }
        self.col_ptr[0] = 0;

        // CSR mirror for row-wise scans (the crash basis). The
        // constraints are already row-ordered, so one pass suffices.
        self.row_ptr.clear();
        self.row_cols.clear();
        self.row_vals.clear();
        self.row_ptr.push(0);
        for c in &model.constraints {
            for &(var, coeff) in &c.terms {
                self.row_cols.push(var.index() as u32);
                self.row_vals.push(coeff);
            }
            self.row_ptr.push(self.row_cols.len());
        }

        // Bounds and costs: structural then slack columns.
        let maximise = model.sense() == Sense::Maximize;
        self.lower.clear();
        self.upper.clear();
        self.cost.clear();
        for v in &model.variables {
            let ub = v.upper.unwrap_or(f64::INFINITY);
            if ub < v.lower {
                self.trivially_infeasible = true;
            }
            self.lower.push(v.lower);
            self.upper.push(ub);
            self.cost
                .push(if maximise { -v.objective } else { v.objective });
        }
        self.rhs.clear();
        for c in &model.constraints {
            let (slo, shi) = slack_bounds(c.cmp);
            self.lower.push(slo);
            self.upper.push(shi);
            self.cost.push(0.0);
            self.rhs.push(c.rhs);
        }
    }

    /// Forgets any equilibration. Called when a build starts from a
    /// fresh model — and by the solve driver *before* presolve, so an
    /// early infeasibility exit cannot leave a previous model's scaling
    /// diagnostics behind (`scaling_spread` would report stale data).
    pub(crate) fn reset_scaling(&mut self) {
        self.scaled = false;
        self.row_scale.clear();
        self.col_scale.clear();
        self.spread_before = 1.0;
        self.spread_after = 1.0;
    }

    /// Equilibrates the freshly built form per `mode` (see
    /// [`crate::revised::scaling`]): power-of-two row/column scales from
    /// the geometric-mean iteration are folded into the matrix, bounds,
    /// costs and right-hand sides. Slack columns keep coefficient `+1`
    /// (their scale is `1/r_i`, absorbed into the slack's units), so the
    /// all-slack basis stays the identity. Must run on an unscaled form,
    /// before any artificials are appended.
    pub(crate) fn apply_scaling(&mut self, mode: Scaling) {
        debug_assert!(!self.scaled && self.art_rows.is_empty());
        self.spread_before = scaling::entry_spread(&self.col_vals);
        self.spread_after = self.spread_before;
        let wanted = match mode {
            Scaling::Off => false,
            Scaling::Geometric => true,
            Scaling::Auto => self.spread_before > scaling::AUTO_SPREAD,
        };
        if !wanted || self.m == 0 || self.n_struct == 0 || self.col_vals.is_empty() {
            return;
        }
        let (row_scale, col_scale) = scaling::geometric_mean_scales(
            self.m,
            self.n_struct,
            &self.col_ptr,
            &self.col_rows,
            &self.col_vals,
        );
        self.row_scale = row_scale;
        self.col_scale = col_scale;
        for j in 0..self.n_struct {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                self.col_vals[k] *= self.row_scale[self.col_rows[k] as usize] * self.col_scale[j];
            }
        }
        for row in 0..self.m {
            for t in self.row_ptr[row]..self.row_ptr[row + 1] {
                self.row_vals[t] *= self.row_scale[row] * self.col_scale[self.row_cols[t] as usize];
            }
        }
        self.scaled = true;
        self.rescale_bounds_costs_rhs();
        self.spread_after = scaling::entry_spread(&self.col_vals);
    }

    /// Converts freshly refreshed (model-unit) structural bounds, costs
    /// and right-hand sides into scaled units: `x'_j = x_j / c_j`, so
    /// bounds divide by `c_j`, the cost multiplies by `c_j`, and each
    /// right-hand side multiplies by `r_i`. Power-of-two scales make
    /// every one of these conversions exact.
    fn rescale_bounds_costs_rhs(&mut self) {
        for j in 0..self.n_struct {
            let c = self.col_scale[j];
            self.lower[j] /= c;
            self.upper[j] /= c;
            self.cost[j] *= c;
        }
        for (row, rhs) in self.rhs.iter_mut().enumerate() {
            *rhs *= self.row_scale[row];
        }
    }

    /// Multiplier converting a scaled bound violation of `col` back to
    /// model units: a structural's scaled value is `x_j / c_j` so its
    /// violation recovers `c_j`; a slack absorbed its row's scale
    /// (`s' = r_i·s`) so its violation sheds `r_i`. Artificials only
    /// exist in scaled row units and keep `1`. Pricing uses this to
    /// rank violations by their model-unit magnitude — otherwise the
    /// folded scales, not the geometry, decide the pivot order.
    #[inline]
    pub(crate) fn violation_unscale(&self, col: usize) -> f64 {
        if !self.scaled {
            1.0
        } else if col < self.n_struct {
            self.col_scale[col]
        } else if col < self.n_struct + self.m {
            1.0 / self.row_scale[col - self.n_struct]
        } else {
            1.0
        }
    }

    /// The combined multiplier a model coefficient in `(row, col)` picks
    /// up from the stored equilibration (`1` when unscaled).
    #[inline]
    fn entry_scale(&self, row: usize, col: usize) -> f64 {
        if self.scaled {
            self.row_scale[row] * self.col_scale[col]
        } else {
            1.0
        }
    }

    /// Refreshes the structural bounds, objective, right-hand sides
    /// **and the slack bounds** from `model` (used by the warm-started
    /// paths; the stored basis stays valid because none of these enter
    /// the basis matrix — the slack bounds encode each constraint's
    /// comparison direction, so refreshing them lets the warm path
    /// absorb even a flipped `≤`/`≥`/`=` without a stale-bound answer).
    /// A scaled form re-applies its stored scales, which stay valid
    /// because the warm path guarantees the matrix is unchanged.
    pub(crate) fn refresh_bounds(&mut self, model: &Model) {
        self.trivially_infeasible = false;
        let maximise = model.sense() == Sense::Maximize;
        for (j, v) in model.variables.iter().enumerate() {
            let ub = v.upper.unwrap_or(f64::INFINITY);
            if ub < v.lower {
                self.trivially_infeasible = true;
            }
            self.lower[j] = v.lower;
            self.upper[j] = ub;
            self.cost[j] = if maximise { -v.objective } else { v.objective };
        }
        for (row, c) in model.constraints.iter().enumerate() {
            self.rhs[row] = c.rhs;
            let (slo, shi) = slack_bounds(c.cmp);
            self.lower[self.n_struct + row] = slo;
            self.upper[self.n_struct + row] = shi;
        }
        if self.scaled {
            self.rescale_bounds_costs_rhs();
        }
    }

    /// `true` when `model` has the same shape as the standard form was
    /// built for (variable and constraint counts).
    pub(crate) fn shape_matches(&self, model: &Model) -> bool {
        self.n_struct == model.num_vars() && self.m == model.num_constraints()
    }

    /// `true` when `model`'s constraint matrix is entry-for-entry the
    /// one this standard form was built from (compared against the CSR
    /// mirror, which preserves the original row-major term order).
    /// `O(nnz)` — cheap next to a solve, and what lets `solve_warm`
    /// keep its documented promise of falling back to a cold solve
    /// whenever anything but bounds, costs or right-hand sides changed.
    pub(crate) fn matrix_matches(&self, model: &Model) -> bool {
        for (row, c) in model.constraints.iter().enumerate() {
            let range = self.row_ptr[row]..self.row_ptr[row + 1];
            if range.len() != c.terms.len() {
                return false;
            }
            for (t, &(var, coeff)) in range.zip(&c.terms) {
                if self.row_cols[t] as usize != var.index()
                    || self.row_vals[t] != coeff * self.entry_scale(row, var.index())
                {
                    return false;
                }
            }
        }
        true
    }

    /// Rebuilds the standard form over the rows and columns `pre` kept,
    /// folding the fixed columns into the right-hand sides. The layout
    /// matches [`StandardForm::build`] exactly, just over the reduced
    /// index spaces recorded in `pre`.
    pub(crate) fn build_reduced(&mut self, model: &Model, pre: &Presolve) {
        let n = pre.cols.len();
        let m = pre.rows.len();
        self.m = m;
        self.n_struct = n;
        self.art_rows.clear();
        self.art_signs.clear();
        self.trivially_infeasible = false;
        self.reset_scaling();

        // CSC over kept rows and columns: count, prefix, fill.
        self.col_ptr.clear();
        self.col_ptr.resize(n + 1, 0);
        for &i in &pre.rows {
            for &(var, _) in &model.constraints[i as usize].terms {
                if pre.col_kept[var.index()] {
                    self.col_ptr[pre.col_map[var.index()] as usize + 1] += 1;
                }
            }
        }
        for j in 0..n {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        let nnz = self.col_ptr[n];
        self.col_rows.clear();
        self.col_rows.resize(nnz, 0);
        self.col_vals.clear();
        self.col_vals.resize(nnz, 0.0);
        for (ri, &i) in pre.rows.iter().enumerate() {
            for &(var, coeff) in &model.constraints[i as usize].terms {
                if pre.col_kept[var.index()] {
                    let rj = pre.col_map[var.index()] as usize;
                    let slot = self.col_ptr[rj];
                    self.col_rows[slot] = ri as u32;
                    self.col_vals[slot] = coeff;
                    self.col_ptr[rj] += 1;
                }
            }
        }
        for j in (1..=n).rev() {
            self.col_ptr[j] = self.col_ptr[j - 1];
        }
        self.col_ptr[0] = 0;

        // CSR mirror over the kept entries, preserving term order.
        self.row_ptr.clear();
        self.row_cols.clear();
        self.row_vals.clear();
        self.row_ptr.push(0);
        for &i in &pre.rows {
            for &(var, coeff) in &model.constraints[i as usize].terms {
                if pre.col_kept[var.index()] {
                    self.row_cols.push(pre.col_map[var.index()]);
                    self.row_vals.push(coeff);
                }
            }
            self.row_ptr.push(self.row_cols.len());
        }

        // Bounds, costs and right-hand sides via the shared refresher.
        self.lower.clear();
        self.upper.clear();
        self.cost.clear();
        self.lower.resize(n, 0.0);
        self.upper.resize(n, 0.0);
        self.cost.resize(n, 0.0);
        self.rhs.clear();
        self.rhs.resize(m, 0.0);
        for _ in &pre.rows {
            self.lower.push(0.0);
            self.upper.push(0.0);
            self.cost.push(0.0);
        }
        self.refresh_reduced(model, pre);
    }

    /// Refreshes the reduced structural bounds, objective and
    /// right-hand sides from `model` and the (re-analysed) `pre` — the
    /// warm-start counterpart of [`StandardForm::refresh_bounds`] for a
    /// presolved form. The eliminated rows/columns must match the ones
    /// this form was built from.
    pub(crate) fn refresh_reduced(&mut self, model: &Model, pre: &Presolve) {
        self.trivially_infeasible = false;
        let maximise = model.sense() == Sense::Maximize;
        for (rj, &j) in pre.cols.iter().enumerate() {
            let j = j as usize;
            self.lower[rj] = pre.lower[j];
            self.upper[rj] = pre.upper[j];
            let objective = model.variables[j].objective;
            self.cost[rj] = if maximise { -objective } else { objective };
        }
        let n = pre.cols.len();
        for (ri, &i) in pre.rows.iter().enumerate() {
            let c = &model.constraints[i as usize];
            let mut rhs = c.rhs;
            for &(var, coeff) in &c.terms {
                if !pre.col_kept[var.index()] {
                    rhs -= coeff * pre.fixed[var.index()];
                }
            }
            self.rhs[ri] = rhs;
            let (slo, shi) = slack_bounds(c.cmp);
            self.lower[n + ri] = slo;
            self.upper[n + ri] = shi;
        }
        if self.scaled {
            self.rescale_bounds_costs_rhs();
        }
    }

    /// `true` when `model`'s kept entries are entry-for-entry the ones
    /// this reduced form was built from — the presolved counterpart of
    /// [`StandardForm::matrix_matches`].
    pub(crate) fn matrix_matches_reduced(&self, model: &Model, pre: &Presolve) -> bool {
        for (ri, &i) in pre.rows.iter().enumerate() {
            let mut cursor = self.row_ptr[ri];
            let end = self.row_ptr[ri + 1];
            for &(var, coeff) in &model.constraints[i as usize].terms {
                if !pre.col_kept[var.index()] {
                    continue;
                }
                if cursor == end
                    || self.row_cols[cursor] != pre.col_map[var.index()]
                    || self.row_vals[cursor]
                        != coeff * self.entry_scale(ri, pre.col_map[var.index()] as usize)
                {
                    return false;
                }
                cursor += 1;
            }
            if cursor != end {
                return false;
            }
        }
        true
    }

    /// Applies `f(row, value)` to every entry of column `col`.
    #[inline]
    pub(crate) fn for_each_entry(&self, col: usize, mut f: impl FnMut(usize, f64)) {
        if col < self.n_struct {
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                f(self.col_rows[k] as usize, self.col_vals[k]);
            }
        } else if col < self.art_base() {
            f(col - self.n_struct, 1.0);
        } else {
            let a = col - self.art_base();
            f(self.art_rows[a], self.art_signs[a]);
        }
    }

    /// Dot product of column `col` with a dense row-indexed vector.
    #[inline]
    pub(crate) fn col_dot(&self, col: usize, v: &[f64]) -> f64 {
        if col < self.n_struct {
            let mut sum = 0.0;
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                sum += self.col_vals[k] * v[self.col_rows[k] as usize];
            }
            sum
        } else if col < self.art_base() {
            v[col - self.n_struct]
        } else {
            let a = col - self.art_base();
            self.art_signs[a] * v[self.art_rows[a]]
        }
    }
}

/// Coefficient magnitude below which a term is treated as absent.
const LIVE_TOL: f64 = 1e-12;
/// Detection tolerance for forcing constraints and redundancy.
const FORCE_TOL: f64 = 1e-9;
/// Violation above which presolve declares the model infeasible —
/// matched to the phase-1 acceptance threshold of the solver
/// (`tolerance * 10`), so presolve and the full solve agree on
/// borderline instances.
const INFEAS_TOL: f64 = 1e-6;

/// The presolve pass: bound tightenings, eliminated rows and fixed
/// columns, plus the original↔reduced index maps. See the module docs.
#[derive(Default)]
pub(crate) struct Presolve {
    /// Tightened bounds per original variable.
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    /// Value of each eliminated (fixed) variable.
    pub(crate) fixed: Vec<f64>,
    /// Surviving rows / columns of the current analysis.
    pub(crate) row_kept: Vec<bool>,
    pub(crate) col_kept: Vec<bool>,
    /// The masks the current reduced form was built from (the warm
    /// path re-analyses and only reuses the basis when they match).
    built_row_kept: Vec<bool>,
    built_col_kept: Vec<bool>,
    /// Reduced→original index lists and the original→reduced column
    /// map, frozen at build time.
    pub(crate) rows: Vec<u32>,
    pub(crate) cols: Vec<u32>,
    pub(crate) col_map: Vec<u32>,
    // ---- analysis scratch ----
    occ: Vec<u32>,
    occ_row: Vec<u32>,
    occ_coeff: Vec<f64>,
    stamp: Vec<u32>,
    stamp_gen: u32,
}

impl Presolve {
    /// Analyses `model`, filling the masks, tightened bounds and fixed
    /// values. Returns `false` when presolve alone proves the model
    /// infeasible.
    pub(crate) fn analyze(&mut self, model: &Model) -> bool {
        let n = model.num_vars();
        let m = model.num_constraints();
        self.lower.clear();
        self.upper.clear();
        self.fixed.clear();
        self.fixed.resize(n, 0.0);
        self.row_kept.clear();
        self.row_kept.resize(m, true);
        self.col_kept.clear();
        self.col_kept.resize(n, true);
        self.occ.clear();
        self.occ.resize(n, 0);
        self.occ_row.clear();
        self.occ_row.resize(n, 0);
        self.occ_coeff.clear();
        self.occ_coeff.resize(n, 0.0);
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.stamp_gen = 0;

        let maximise = model.sense() == Sense::Maximize;
        for v in &model.variables {
            let ub = v.upper.unwrap_or(f64::INFINITY);
            if ub < v.lower {
                // Strict, like the unreduced build: inverted *model*
                // bounds are trivially infeasible.
                return false;
            }
            self.lower.push(v.lower);
            self.upper.push(ub);
        }

        for _pass in 0..16 {
            let mut changed = false;
            // Column occurrences over the surviving rows (refreshed per
            // pass; rows dropped mid-pass only ever overcount, which
            // the next pass corrects).
            self.occ.iter_mut().for_each(|o| *o = 0);
            for (i, c) in model.constraints.iter().enumerate() {
                if !self.row_kept[i] {
                    continue;
                }
                for &(var, a) in &c.terms {
                    let j = var.index();
                    if self.col_kept[j] && a.abs() > LIVE_TOL {
                        self.occ[j] += 1;
                        self.occ_row[j] = i as u32;
                        self.occ_coeff[j] = a;
                    }
                }
            }

            // Row pass: singletons, redundancy, forcing.
            for (i, c) in model.constraints.iter().enumerate() {
                if !self.row_kept[i] {
                    continue;
                }
                let mut rhs = c.rhs;
                let mut live = 0usize;
                let mut single = (0usize, 0.0f64);
                let mut min_act = 0.0f64;
                let mut max_act = 0.0f64;
                for &(var, a) in &c.terms {
                    let j = var.index();
                    if !self.col_kept[j] {
                        rhs -= a * self.fixed[j];
                        continue;
                    }
                    if a.abs() <= LIVE_TOL {
                        continue;
                    }
                    live += 1;
                    single = (j, a);
                    let (lo, hi) = (self.lower[j], self.upper[j]);
                    if a > 0.0 {
                        min_act += a * lo;
                        max_act += a * hi;
                    } else {
                        min_act += a * hi;
                        max_act += a * lo;
                    }
                }
                match live {
                    0 => {
                        let violated = match c.cmp {
                            Cmp::Le => rhs < -INFEAS_TOL,
                            Cmp::Ge => rhs > INFEAS_TOL,
                            Cmp::Eq => rhs.abs() > INFEAS_TOL,
                        };
                        if violated {
                            return false;
                        }
                        self.row_kept[i] = false;
                        changed = true;
                    }
                    1 => {
                        // Singleton row: a bound on its only variable.
                        let (j, a) = single;
                        let v = rhs / a;
                        let (tighten_upper, tighten_lower) = match c.cmp {
                            Cmp::Le => (a > 0.0, a < 0.0),
                            Cmp::Ge => (a < 0.0, a > 0.0),
                            Cmp::Eq => (true, true),
                        };
                        if tighten_upper && v < self.upper[j] {
                            self.upper[j] = v;
                        }
                        if tighten_lower && v > self.lower[j] {
                            self.lower[j] = v;
                        }
                        if self.lower[j] > self.upper[j] {
                            if self.lower[j] - self.upper[j] > INFEAS_TOL {
                                return false;
                            }
                            let mid = 0.5 * (self.lower[j] + self.upper[j]);
                            self.lower[j] = mid;
                            self.upper[j] = mid;
                        }
                        self.row_kept[i] = false;
                        changed = true;
                    }
                    _ => {
                        let (infeasible, redundant, force_min, force_max) = match c.cmp {
                            Cmp::Le => (
                                min_act > rhs + INFEAS_TOL,
                                max_act <= rhs + FORCE_TOL,
                                min_act >= rhs - FORCE_TOL,
                                false,
                            ),
                            Cmp::Ge => (
                                max_act < rhs - INFEAS_TOL,
                                min_act >= rhs - FORCE_TOL,
                                false,
                                max_act <= rhs + FORCE_TOL,
                            ),
                            Cmp::Eq => (
                                min_act > rhs + INFEAS_TOL || max_act < rhs - INFEAS_TOL,
                                false,
                                min_act >= rhs - FORCE_TOL,
                                max_act <= rhs + FORCE_TOL,
                            ),
                        };
                        if infeasible {
                            return false;
                        }
                        if redundant {
                            self.row_kept[i] = false;
                            changed = true;
                        } else if (force_min || force_max) && self.row_without_duplicates(c) {
                            // Forcing: feasibility needs the extreme
                            // activity, which pins every live variable
                            // to the bound attaining it.
                            for &(var, a) in &c.terms {
                                let j = var.index();
                                if !self.col_kept[j] || a.abs() <= LIVE_TOL {
                                    continue;
                                }
                                let at_lower = (a > 0.0) == force_min;
                                let value = if at_lower {
                                    self.lower[j]
                                } else {
                                    self.upper[j]
                                };
                                debug_assert!(value.is_finite());
                                self.fixed[j] = value;
                                self.col_kept[j] = false;
                            }
                            self.row_kept[i] = false;
                            changed = true;
                        }
                    }
                }
            }

            // Column pass: collapsed bounds, empty and singleton columns.
            for j in 0..n {
                if !self.col_kept[j] {
                    continue;
                }
                let (lo, hi) = (self.lower[j], self.upper[j]);
                if hi.is_finite() && lo.is_finite() && hi - lo <= FORCE_TOL {
                    self.fixed[j] = lo;
                    self.col_kept[j] = false;
                    changed = true;
                    continue;
                }
                let objective = model.variables[j].objective;
                let cost = if maximise { -objective } else { objective };
                match self.occ[j] {
                    0 => {
                        // Empty column: park it at the objective's
                        // preferred finite bound; an unboundedly
                        // improving free column stays for the solver to
                        // report Unbounded on.
                        let target = if cost > LIVE_TOL {
                            lo.is_finite().then_some(lo)
                        } else if cost < -LIVE_TOL {
                            hi.is_finite().then_some(hi)
                        } else if lo.is_finite() {
                            Some(lo)
                        } else if hi.is_finite() {
                            Some(hi)
                        } else {
                            Some(0.0)
                        };
                        if let Some(value) = target {
                            self.fixed[j] = value;
                            self.col_kept[j] = false;
                            changed = true;
                        }
                    }
                    1 if self.row_kept[self.occ_row[j] as usize] => {
                        // Singleton column: if one bound both relaxes
                        // its only constraint and (weakly) improves the
                        // objective, some optimum has the variable
                        // there — fix it.
                        let a = self.occ_coeff[j];
                        let down = match model.constraints[self.occ_row[j] as usize].cmp {
                            Cmp::Le => Some(a > 0.0),
                            Cmp::Ge => Some(a < 0.0),
                            Cmp::Eq => None,
                        };
                        let Some(down) = down else { continue };
                        let obj_compatible = if down {
                            cost >= -LIVE_TOL
                        } else {
                            cost <= LIVE_TOL
                        };
                        let target = if down { lo } else { hi };
                        if obj_compatible && target.is_finite() {
                            self.fixed[j] = target;
                            self.col_kept[j] = false;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        true
    }

    /// `true` when no surviving variable appears twice in `c` — the
    /// precondition for the forcing-row fix (duplicated terms make the
    /// per-term activity bounds unattainable).
    fn row_without_duplicates(&mut self, c: &crate::model::Constraint) -> bool {
        self.stamp_gen += 1;
        for &(var, a) in &c.terms {
            let j = var.index();
            if !self.col_kept[j] || a.abs() <= LIVE_TOL {
                continue;
            }
            if self.stamp[j] == self.stamp_gen {
                return false;
            }
            self.stamp[j] = self.stamp_gen;
        }
        true
    }

    /// Freezes the reduced index maps and remembers the masks the form
    /// is about to be built from.
    pub(crate) fn finalize_for_build(&mut self) {
        self.rows.clear();
        self.rows.extend(
            self.row_kept
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i as u32)),
        );
        self.cols.clear();
        self.col_map.clear();
        self.col_map.resize(self.col_kept.len(), u32::MAX);
        for (j, &keep) in self.col_kept.iter().enumerate() {
            if keep {
                self.col_map[j] = self.cols.len() as u32;
                self.cols.push(j as u32);
            }
        }
        self.built_row_kept.clear();
        self.built_row_kept.extend_from_slice(&self.row_kept);
        self.built_col_kept.clear();
        self.built_col_kept.extend_from_slice(&self.col_kept);
    }

    /// `true` when the most recent [`Presolve::analyze`] produced
    /// exactly the reductions the current reduced form was built from —
    /// the condition for warm-starting a presolved basis.
    pub(crate) fn matches_built(&self) -> bool {
        self.row_kept == self.built_row_kept && self.col_kept == self.built_col_kept
    }

    /// Rows eliminated by the most recent [`Presolve::analyze`].
    pub(crate) fn rows_removed(&self) -> usize {
        self.row_kept.iter().filter(|&&kept| !kept).count()
    }

    /// Columns eliminated by the most recent [`Presolve::analyze`].
    pub(crate) fn cols_removed(&self) -> usize {
        self.col_kept.iter().filter(|&&kept| !kept).count()
    }
}

/// Where a column currently sits.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum ColStatus {
    /// Basic in the given row.
    Basic(u32),
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// The basis: row → column map, column statuses, basic values.
#[derive(Default)]
pub(crate) struct BasisState {
    pub(crate) status: Vec<ColStatus>,
    /// `basic[row]` = column basic in that row.
    pub(crate) basic: Vec<usize>,
    /// Values of the basic variables, by row.
    pub(crate) x_basic: Vec<f64>,
}

impl BasisState {
    /// Value of a nonbasic column under its current status.
    #[inline]
    pub(crate) fn nonbasic_value(&self, form: &StandardForm, col: usize) -> f64 {
        match self.status[col] {
            ColStatus::Basic(row) => self.x_basic[row as usize],
            ColStatus::Lower => form.lower[col],
            ColStatus::Upper => form.upper[col],
        }
    }

    /// Writes the dense solution (structural columns only) into `out`.
    pub(crate) fn extract_values(&self, form: &StandardForm, out: &mut Vec<f64>) {
        out.clear();
        for j in 0..form.n_struct {
            out.push(self.nonbasic_value(form, j));
        }
    }

    /// Computes `b − Σ_nonbasic a_j·x_j` into `out` (the right-hand side
    /// the basic variables must cover). `O(nnz)`.
    pub(crate) fn residual_rhs(&self, form: &StandardForm, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&form.rhs);
        for col in 0..form.num_cols() {
            match self.status[col] {
                ColStatus::Basic(_) => {}
                ColStatus::Lower | ColStatus::Upper => {
                    let value = self.nonbasic_value(form, col);
                    if value != 0.0 {
                        form.for_each_entry(col, |row, coeff| {
                            out[row] -= coeff * value;
                        });
                    }
                }
            }
        }
    }
}
