//! Column pricing for the revised simplex.
//!
//! Primal side: dense Dantzig pricing over the reduced costs
//! `d_j = c_j − yᵀ a_j` (computed column-wise against the sparse
//! standard form, so a full pricing pass is `O(nnz)`), with Bland's
//! smallest-index rule as the anti-cycling fallback. A nonbasic column
//! is attractive when it sits at its lower bound with `d_j < −tol`
//! (increase it) or at its upper bound with `d_j > tol` (decrease it).
//!
//! Dual side: the leaving row is the basic variable with the largest
//! bound violation; [`choose_dual_entering`] runs the dual ratio test
//! over the pivot row to keep the reduced costs sign-feasible.

use super::basis::{BasisState, ColStatus, StandardForm};

/// An entering candidate: the column and the direction it moves in
/// (`+1.0` away from its lower bound, `−1.0` away from its upper).
pub(crate) struct Entering {
    pub(crate) col: usize,
    pub(crate) sigma: f64,
}

/// Picks the entering column for a primal iteration, or `None` at
/// optimality. Artificial columns may be barred (phase 2).
pub(crate) fn choose_entering(
    form: &StandardForm,
    basis: &BasisState,
    costs: &[f64],
    y: &[f64],
    tol: f64,
    use_bland: bool,
    allow_artificial: bool,
) -> Option<Entering> {
    let art_base = form.art_base();
    let mut best: Option<(usize, f64, f64)> = None; // (col, sigma, score)
    debug_assert_eq!(costs.len(), form.num_cols());
    for (col, &cost) in costs.iter().enumerate() {
        let sigma = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => 1.0,
            ColStatus::Upper => -1.0,
        };
        if form.is_fixed(col) {
            continue;
        }
        if !allow_artificial && col >= art_base {
            continue;
        }
        let reduced = cost - form.col_dot(col, y);
        // Attractive iff moving in `sigma` direction lowers the cost.
        let score = -sigma * reduced;
        if score > tol {
            if use_bland {
                return Some(Entering { col, sigma });
            }
            match best {
                Some((_, _, best_score)) if score <= best_score => {}
                _ => best = Some((col, sigma, score)),
            }
        }
    }
    best.map(|(col, sigma, _)| Entering { col, sigma })
}

/// A leaving candidate for the dual simplex: the row whose basic
/// variable violates a bound, and on which side.
pub(crate) struct Leaving {
    pub(crate) row: usize,
    /// `true` when the basic value exceeds its upper bound, `false`
    /// when it undershoots its lower bound.
    pub(crate) above: bool,
}

/// Picks the most-violated basic variable, or `None` when the basis is
/// primal feasible.
pub(crate) fn choose_leaving_row(
    form: &StandardForm,
    basis: &BasisState,
    tol: f64,
) -> Option<Leaving> {
    let mut best: Option<(Leaving, f64)> = None;
    for (row, &col) in basis.basic.iter().enumerate() {
        let value = basis.x_basic[row];
        let below = form.lower[col] - value;
        let above = value - form.upper[col];
        let (violation, is_above) = if above > below {
            (above, true)
        } else {
            (below, false)
        };
        if violation > tol {
            match best {
                Some((_, best_violation)) if violation <= best_violation => {}
                _ => {
                    best = Some((
                        Leaving {
                            row,
                            above: is_above,
                        },
                        violation,
                    ))
                }
            }
        }
    }
    best.map(|(leaving, _)| leaving)
}

/// Dual ratio test: given the pivot row `rho = B⁻ᵀ e_r` and the duals
/// `y`, picks the nonbasic column that limits the dual step, keeping
/// every reduced cost on its feasible side. Returns `None` when no
/// column is eligible — the primal is infeasible.
pub(crate) fn choose_dual_entering(
    form: &StandardForm,
    basis: &BasisState,
    costs: &[f64],
    y: &[f64],
    rho: &[f64],
    above: bool,
    pivot_tol: f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
    debug_assert_eq!(costs.len(), form.num_cols());
    for (col, &cost) in costs.iter().enumerate() {
        let at_lower = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => true,
            ColStatus::Upper => false,
        };
        if form.is_fixed(col) {
            continue;
        }
        let alpha = form.col_dot(col, rho);
        if alpha.abs() <= pivot_tol {
            continue;
        }
        // The leaving basic must move back towards its violated bound:
        //   below lower (above = false): needs Δx_B[r] > 0, i.e. α·Δx_j < 0;
        //   above upper (above = true):  needs Δx_B[r] < 0, i.e. α·Δx_j > 0.
        // At-lower columns can only increase, at-upper only decrease.
        let eligible = if above {
            (at_lower && alpha > 0.0) || (!at_lower && alpha < 0.0)
        } else {
            (at_lower && alpha < 0.0) || (!at_lower && alpha > 0.0)
        };
        if !eligible {
            continue;
        }
        let reduced = cost - form.col_dot(col, y);
        let ratio = reduced.abs() / alpha.abs();
        let better = match best {
            None => true,
            Some((_, best_ratio, best_alpha)) => {
                ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && alpha.abs() > best_alpha)
            }
        };
        if better {
            best = Some((col, ratio, alpha.abs()));
        }
    }
    best.map(|(col, _, _)| col)
}
