//! Column and row pricing for the revised simplex.
//!
//! Primal side: four rules behind the [`Pricing`] enum —
//!
//! * **Partial** (the default): candidate-list *multiple pricing* on
//!   top of devex metrics. A full `O(n)` scan runs only to **rebuild**
//!   a small candidate queue (the [`PARTIAL_QUEUE_MAX`]-best attractive
//!   columns by `d_j²/w_j`); every ordinary iteration then re-prices
//!   just the queue — dozens of entries instead of ~20k columns —
//!   dropping members that went basic, hit a fixed bound or lost their
//!   attractiveness as the reduced costs drifted. When the queue runs
//!   dry the next full scan recycles it. Optimality is still only ever
//!   declared by a *full* scan (and, as for every rule, confirmed
//!   against freshly recomputed reduced costs), so the rule changes the
//!   pivot order but never the answer. Queue traffic is observable as
//!   `SolveStats::queue_hits` / `queue_rebuilds`.
//! * **Devex**: Forrest–Goldfarb reference-framework pricing over the
//!   full column set. Every nonbasic column carries a weight `w_j ≥ 1`
//!   approximating `‖B⁻¹a_j‖²` over the current reference framework,
//!   and the entering column maximises `d_j² / w_j`. After a pivot with
//!   entering column `q` and pivot row `r`, the weights update from the
//!   pivot row `α_r = aᵀ B⁻ᵀ e_r` alone:
//!   `w_j ← max(w_j, (α_rj / α_rq)² · w_q)` and
//!   `w_leaving ← max(w_q / α_rq², 1)`. The update rides on the sparse
//!   pivot row the reduced-cost maintenance computes anyway, so it is
//!   close to free. The framework resets (all weights to 1) at every
//!   phase start and whenever a weight overflows [`DEVEX_RESET`];
//!   resets are counted in `SolveStats::devex_resets`. Partial pricing
//!   shares these weights and reset rules.
//! * **Dantzig**: the classic most-negative reduced cost, `O(n)` per
//!   pass with no update cost — still the best choice for very short
//!   solves (and what micro models downgrade to).
//! * **Bland**: smallest eligible index, the anti-cycling guarantee.
//!   Any rule degrades to Bland after `SimplexOptions::bland_after`
//!   iterations, bypassing the candidate queue entirely.
//!
//! The reduced costs `d_j = c_j − yᵀ a_j` are maintained
//! **incrementally**: the driver computes them from scratch (`O(nnz)`)
//! only at phase starts and refactorisations, and otherwise applies the
//! rank-one update `d ← d − (d_q/α_q)·α` after each pivot, where the
//! pivot row `α = Aᵀ B⁻ᵀ e_r` comes out of [`pivot_row_alphas`] —
//! computed **row-wise** over the nonzeros of `B⁻ᵀe_r` only, which on
//! the tree-structured replica bases touches a handful of rows. The
//! same sparse `α` drives the devex weight update for free.
//!
//! Dual side: two rules behind [`DualPricing`] pick the **leaving row**
//! (the primal-infeasible basic variable the dual simplex repairs
//! next) —
//!
//! * **Devex** (the default): dual devex row weights `w_r ≥ 1`
//!   approximating `‖B⁻ᵀe_r‖²`; the leaving row maximises
//!   `violation²/w_r`. After a dual pivot on row `r` with pivot column
//!   `w = B⁻¹a_q` and pivot element `α_r`, the standard rank-one update
//!   runs over the pivot *column*: `w_i ← max(w_i, (w_i/α_r)²·w_r)` for
//!   `i ≠ r` and `w_r ← max(w_r/α_r², 1)`, with the same overflow reset
//!   rule as the primal weights.
//! * **MostViolated**: the historical rule — the largest bound
//!   violation wins. Kept as the differential baseline.
//!
//! Both dual rules price in **model units**: the violation (and the
//! devex update's pivot-column entries) are multiplied by
//! [`StandardForm::violation_unscale`] so that, when the equilibration
//! pass is on, the metric ranks rows by their *unscaled* violations.
//! Without this, folded row/column scales bend the dual pivot path and
//! the scaled solve of an ill-scaled family pays extra iterations for
//! no numerical benefit (the PR 9 scaling-regression root cause).
//!
//! The violated-row set itself is kept **incrementally** in
//! [`DualCandidates`]: a dual pivot only moves the basic values in the
//! entering column's FTRAN pattern plus the bound-flip deltas, so the
//! loop patches the list from those sparse updates and pays a full
//! `O(m)` rebuild only at (re)factorisations and before declaring
//! primal feasibility.
//!
//! The dual *entering* column comes out of the bound-flipping dual
//! ratio test in [`super::ratio`], which walks the sparse pivot row's
//! breakpoints and flips boxed columns for longer dual steps.

use super::basis::{BasisState, ColStatus, StandardForm};

/// Primal pricing rule of the revised simplex (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Pricing {
    /// Candidate-list multiple pricing with devex metrics: full scans
    /// only rebuild the queue, ordinary iterations re-price the queue.
    #[default]
    Partial,
    /// Devex reference-framework pricing (Forrest–Goldfarb) over the
    /// full column set.
    Devex,
    /// Most-negative reduced cost.
    Dantzig,
    /// Smallest eligible index (anti-cycling; slow).
    Bland,
}

/// Dual pricing rule: how the dual simplex picks its leaving row (see
/// the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DualPricing {
    /// Dual devex row weights: the leaving row maximises
    /// `violation² / w_r`.
    #[default]
    Devex,
    /// Largest bound violation (the historical baseline rule).
    MostViolated,
}

/// Weight magnitude that triggers a devex reference-framework reset
/// (primal column weights and dual row weights alike).
const DEVEX_RESET: f64 = 1e7;

/// Candidate-queue capacity of [`Pricing::Partial`]: a full rebuild
/// keeps at most this many attractive columns. Sized so a queue scan
/// stays cache-resident while holding enough candidates that typical
/// minor cycles run 20+ pivots between rebuilds.
const PARTIAL_QUEUE_MAX: usize = 192;

/// An entering candidate: the column and the direction it moves in
/// (`+1.0` away from its lower bound, `−1.0` away from its upper).
pub(crate) struct Entering {
    pub(crate) col: usize,
    pub(crate) sigma: f64,
}

/// Picks the entering column for a primal iteration from the
/// (incrementally maintained) reduced costs `d`, or `None` when none is
/// attractive. Artificial columns may be barred (phase 2). With
/// `devex_weights` present, candidates are ranked by `d_j² / w_j`
/// instead of `|d_j|`; `use_bland` overrides both with the smallest
/// eligible index. A flat `O(n)` scan — no matrix access at all.
pub(crate) fn choose_entering(
    form: &StandardForm,
    basis: &BasisState,
    d: &[f64],
    tol: f64,
    use_bland: bool,
    allow_artificial: bool,
    devex_weights: Option<&[f64]>,
) -> Option<Entering> {
    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
    let art_base = form.art_base();
    let mut best: Option<(usize, f64, f64)> = None; // (col, sigma, metric)
    debug_assert_eq!(d.len(), form.num_cols());
    for (col, &reduced) in d.iter().enumerate() {
        let sigma = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => 1.0,
            ColStatus::Upper => -1.0,
        };
        if form.is_fixed(col) {
            continue;
        }
        if !allow_artificial && col >= art_base {
            continue;
        }
        // Attractive iff moving in `sigma` direction lowers the cost.
        let score = -sigma * reduced;
        if score > tol {
            if use_bland {
                return Some(Entering { col, sigma });
            }
            let metric = match devex_weights {
                Some(weights) => reduced * reduced / weights[col].max(1.0),
                None => score,
            };
            match best {
                Some((_, _, best_metric)) if metric <= best_metric => {}
                _ => best = Some((col, sigma, metric)),
            }
        }
    }
    best.map(|(col, sigma, _)| Entering { col, sigma })
}

/// The recycled candidate queue of [`Pricing::Partial`].
///
/// Lifecycle: [`CandidateQueue::rebuild`] runs one full `O(n)` scan and
/// keeps the [`PARTIAL_QUEUE_MAX`]-best attractive columns by devex
/// metric; [`CandidateQueue::pick`] then serves entering candidates
/// from the queue alone, compacting away entries that went basic, hit a
/// fixed bound or stopped being attractive. An empty pick after a fresh
/// rebuild means no attractive column exists anywhere — the driver's
/// optimality signal.
#[derive(Default)]
pub(crate) struct CandidateQueue {
    cols: Vec<u32>,
    /// Rebuild scratch: `(metric, col)` of every attractive column.
    scratch: Vec<(f64, u32)>,
}

impl CandidateQueue {
    /// Empties the queue (phase starts, reduced-cost recomputations
    /// that invalidate the ranking wholesale).
    pub(crate) fn clear(&mut self) {
        self.cols.clear();
    }

    /// Best still-attractive candidate in the queue, or `None` when the
    /// queue is exhausted. Entries that are no longer priceable are
    /// swap-removed on the way.
    pub(crate) fn pick(
        &mut self,
        form: &StandardForm,
        basis: &BasisState,
        d: &[f64],
        tol: f64,
        weights: &[f64],
    ) -> Option<Entering> {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
        let mut best: Option<(usize, f64, f64)> = None; // (col, sigma, metric)
        let mut i = 0;
        while i < self.cols.len() {
            let col = self.cols[i] as usize;
            let sigma = match basis.status[col] {
                ColStatus::Basic(_) => {
                    self.cols.swap_remove(i);
                    continue;
                }
                ColStatus::Lower => 1.0,
                ColStatus::Upper => -1.0,
            };
            let reduced = d[col];
            if form.is_fixed(col) || -sigma * reduced <= tol {
                self.cols.swap_remove(i);
                continue;
            }
            let metric = reduced * reduced / weights[col].max(1.0);
            match best {
                Some((_, _, best_metric)) if metric <= best_metric => {}
                _ => best = Some((col, sigma, metric)),
            }
            i += 1;
        }
        best.map(|(col, sigma, _)| Entering { col, sigma })
    }

    /// Full `O(n)` rescan: refills the queue with the top
    /// [`PARTIAL_QUEUE_MAX`] attractive columns by devex metric.
    pub(crate) fn rebuild(
        &mut self,
        form: &StandardForm,
        basis: &BasisState,
        d: &[f64],
        tol: f64,
        allow_artificial: bool,
        weights: &[f64],
    ) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
        self.cols.clear();
        self.scratch.clear();
        let art_base = form.art_base();
        debug_assert_eq!(d.len(), form.num_cols());
        for (col, &reduced) in d.iter().enumerate() {
            let sigma = match basis.status[col] {
                ColStatus::Basic(_) => continue,
                ColStatus::Lower => 1.0,
                ColStatus::Upper => -1.0,
            };
            if form.is_fixed(col) || (!allow_artificial && col >= art_base) {
                continue;
            }
            if -sigma * reduced > tol {
                let metric = reduced * reduced / weights[col].max(1.0);
                self.scratch.push((metric, col as u32));
            }
        }
        if self.scratch.len() > PARTIAL_QUEUE_MAX {
            // Keep the best PARTIAL_QUEUE_MAX by metric (order inside
            // the kept block is irrelevant — `pick` rescans it anyway).
            self.scratch
                .select_nth_unstable_by(PARTIAL_QUEUE_MAX - 1, |a, b| {
                    b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal)
                });
            self.scratch.truncate(PARTIAL_QUEUE_MAX);
        }
        self.cols.extend(self.scratch.iter().map(|&(_, col)| col));
    }
}

/// Computes the sparse pivot row `α = Aᵀ·rho` **row-wise**: only the
/// rows in `rho_nz` (the BTRAN's output pattern) are visited, so the
/// cost is proportional to the nonzeros of `rho` and their rows — on
/// the tree-structured replica bases a handful of entries, not `O(m)`.
/// The result lands in `(cols, vals)`; `acc` is a dense accumulator
/// that must be (and is left) all-zero.
pub(crate) fn pivot_row_alphas(
    form: &StandardForm,
    rho: &[f64],
    rho_nz: &[u32],
    acc: &mut [f64],
    cols: &mut Vec<u32>,
    vals: &mut Vec<f64>,
) {
    cols.clear();
    vals.clear();
    debug_assert_eq!(acc.len(), form.num_cols());
    let n = form.n_struct;
    for &row in rho_nz {
        let row = row as usize;
        let r = rho[row];
        if r == 0.0 {
            continue;
        }
        // The slack of this row has a single +1 entry.
        let slack = n + row;
        if acc[slack] == 0.0 {
            cols.push(slack as u32);
        }
        acc[slack] += r;
        // Structural columns, via the CSR mirror.
        for k in form.row_ptr[row]..form.row_ptr[row + 1] {
            let col = form.row_cols[k] as usize;
            let contribution = form.row_vals[k] * r;
            if contribution != 0.0 {
                if acc[col] == 0.0 {
                    cols.push(col as u32);
                }
                acc[col] += contribution;
            }
        }
    }
    // Artificials: one signed entry each (the list is short).
    let art_base = form.art_base();
    for (a, &row) in form.art_rows.iter().enumerate() {
        let r = rho[row];
        if r != 0.0 {
            let col = art_base + a;
            if acc[col] == 0.0 {
                cols.push(col as u32);
            }
            acc[col] += form.art_signs[a] * r;
        }
    }
    // Gather and reset the accumulator (cancellations leave zeros in
    // `vals`, which every consumer skips).
    for &col in cols.iter() {
        vals.push(acc[col as usize]);
        acc[col as usize] = 0.0;
    }
}

/// Devex weight update after a pivot, from the sparse pivot row
/// `(alpha_cols, alpha_vals)` (computed on the *pre-pivot* basis):
/// `w_j ← max(w_j, (α_j/α_q)²·w_q)` for the touched nonbasic columns
/// and `w_leaving ← max(w_q/α_q², 1)`. Returns `true` when a weight
/// overflowed and the caller must reset the reference framework.
#[allow(clippy::too_many_arguments)]
pub(crate) fn devex_update(
    form: &StandardForm,
    basis: &BasisState,
    weights: &mut [f64],
    alpha_cols: &[u32],
    alpha_vals: &[f64],
    alpha_q: f64,
    wq: f64,
    leaving: usize,
) -> bool {
    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
    let scale = wq / (alpha_q * alpha_q);
    let mut wmax = 0.0f64;
    for (&col, &alpha) in alpha_cols.iter().zip(alpha_vals) {
        let col = col as usize;
        if alpha == 0.0 {
            continue;
        }
        match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower | ColStatus::Upper => {}
        }
        if form.is_fixed(col) {
            continue;
        }
        let candidate = alpha * alpha * scale;
        if candidate > weights[col] {
            weights[col] = candidate;
            wmax = wmax.max(candidate);
        }
    }
    weights[leaving] = scale.max(1.0);
    wmax = wmax.max(weights[leaving]);
    wmax > DEVEX_RESET
}

/// Bound violation of the basic variable in `row`: magnitude and side
/// (`true` = above the upper bound).
#[inline]
fn row_violation(form: &StandardForm, basis: &BasisState, row: usize) -> (f64, bool) {
    let col = basis.basic[row];
    let value = basis.x_basic[row];
    let below = form.lower[col] - value;
    let above = value - form.upper[col];
    if above > below {
        (above, true)
    } else {
        (below, false)
    }
}

/// A leaving candidate for the dual simplex: the row whose basic
/// variable violates a bound, and on which side.
pub(crate) struct Leaving {
    pub(crate) row: usize,
    /// `true` when the basic value exceeds its upper bound, `false`
    /// when it undershoots its lower bound.
    pub(crate) above: bool,
    /// Magnitude of the bound violation — the initial slope of the
    /// bound-flipping dual ratio test.
    pub(crate) violation: f64,
}

/// Incremental leaving-row candidate list for the dual simplex.
///
/// A dual pivot only moves the basic values in the entering column's
/// FTRAN pattern (plus the rows a bound-flip pass touches), so instead
/// of rescanning all `m` rows per iteration the loop keeps the set of
/// currently violated rows and patches it from those sparse deltas:
/// [`Self::note`] admits rows whose value just moved, [`Self::pick`]
/// evicts rows that pivoted back inside their bounds while selecting
/// the best metric. The list is only a superset heuristic — before the
/// loop may declare primal feasibility it must [`Self::rebuild`] from a
/// full scan and pick again, and a refactorisation recomputes every
/// basic value so it rebuilds too.
#[derive(Default)]
pub(crate) struct DualCandidates {
    rows: Vec<u32>,
    in_list: Vec<bool>,
}

impl DualCandidates {
    /// Full O(m) rescan: repopulates the list with every violated row.
    pub(crate) fn rebuild(&mut self, form: &StandardForm, basis: &BasisState, tol: f64) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
        self.rows.clear();
        self.in_list.clear();
        self.in_list.resize(basis.basic.len(), false);
        for row in 0..basis.basic.len() {
            let (violation, _) = row_violation(form, basis, row);
            if violation > tol {
                self.rows.push(row as u32);
                self.in_list[row] = true;
            }
        }
    }

    /// Re-checks a row whose basic value just changed and admits it if
    /// it now violates a bound.
    pub(crate) fn note(&mut self, form: &StandardForm, basis: &BasisState, tol: f64, row: usize) {
        if self.in_list[row] {
            return;
        }
        let (violation, _) = row_violation(form, basis, row);
        if violation > tol {
            self.rows.push(row as u32);
            self.in_list[row] = true;
        }
    }

    /// Best candidate under the dual devex metric (or raw violation
    /// without `weights`), compacting away rows that no longer violate.
    /// `None` means the *list* drained — the caller must `rebuild` and
    /// pick once more before trusting it as primal feasibility.
    pub(crate) fn pick(
        &mut self,
        form: &StandardForm,
        basis: &BasisState,
        tol: f64,
        weights: Option<&[f64]>,
    ) -> Option<Leaving> {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
        let mut best: Option<(Leaving, f64)> = None;
        let mut i = 0;
        while i < self.rows.len() {
            let row = self.rows[i] as usize;
            let (violation, is_above) = row_violation(form, basis, row);
            if violation <= tol {
                self.in_list[row] = false;
                self.rows.swap_remove(i);
                continue;
            }
            // Rank by the model-unit violation: the equilibration folds
            // a per-column scale into every basic value, and without
            // undoing it here the row/column scales — not the geometry
            // — would drive the pivot order (the ill-scaled families
            // paid ~20% extra iterations for exactly that bias).
            let v = violation * form.violation_unscale(basis.basic[row]);
            let metric = match weights {
                Some(weights) => v * v / weights[row].max(1.0),
                None => v,
            };
            // Ties break towards the smallest row so the selection is
            // independent of the list's (compaction-dependent) order.
            let better = match &best {
                Some((best_leaving, best_metric)) => {
                    metric > *best_metric || (metric == *best_metric && row < best_leaving.row)
                }
                None => true,
            };
            if better {
                best = Some((
                    Leaving {
                        row,
                        above: is_above,
                        violation,
                    },
                    metric,
                ));
            }
            i += 1;
        }
        best.map(|(leaving, _)| leaving)
    }
}

/// Dual devex weight update after a dual pivot on `row`, from the pivot
/// column `w = B⁻¹a_q` with pattern `w_nz` (computed on the *pre-pivot*
/// basis, only the pattern's rows are touched) and pivot
/// element `alpha = w[row]`: `w_i ← max(w_i, (w_i/α)²·w_r)` for every
/// other row touched by the column, then `w_r ← max(w_r/α², 1)`.
/// Returns `true` when a weight overflowed and the caller must reset
/// the reference framework.
///
/// Like [`DualCandidates::pick`], the update runs in **model units**.
/// On an equilibrated form row `i` of `w` carries the folded scale
/// `c_q / c_{B_i}`; multiplying by each row's basic-column unscale
/// factor (the leaving column's for the pivot row — `w` belongs to the
/// pre-pivot basis) cancels the common `c_q` in the `w_i/α` ratios and
/// reproduces the unscaled update exactly. Equilibration then only
/// conditions the numerics; it no longer bends the dual pivot path.
/// Must be called *after* the basis update, so `basis.basic[i]` is the
/// post-pivot (= pre-pivot, for `i ≠ row`) basic column.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dual_devex_update(
    form: &StandardForm,
    basis: &BasisState,
    weights: &mut [f64],
    w: &[f64],
    w_nz: &[u32],
    row: usize,
    alpha: f64,
    leaving_col: usize,
) -> bool {
    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
    let alpha_model = alpha * form.violation_unscale(leaving_col);
    let scale = weights[row].max(1.0) / (alpha_model * alpha_model);
    let mut wmax = 0.0f64;
    for &i in w_nz {
        let i = i as usize;
        let wi = w[i];
        if wi == 0.0 || i == row {
            continue;
        }
        let wi = wi * form.violation_unscale(basis.basic[i]);
        let candidate = wi * wi * scale;
        if candidate > weights[i] {
            weights[i] = candidate;
            wmax = wmax.max(candidate);
        }
    }
    weights[row] = scale.max(1.0);
    wmax = wmax.max(weights[row]);
    wmax > DEVEX_RESET
}
