//! Column pricing for the revised simplex.
//!
//! Primal side: three rules behind the [`Pricing`] enum —
//!
//! * **Devex** (the default): Forrest–Goldfarb reference-framework
//!   pricing. Every nonbasic column carries a weight `w_j ≥ 1`
//!   approximating `‖B⁻¹a_j‖²` over the current reference framework,
//!   and the entering column maximises `d_j² / w_j`. After a pivot with
//!   entering column `q` and pivot row `r`, the weights update from the
//!   pivot row `α_r = aᵀ B⁻ᵀ e_r` alone:
//!   `w_j ← max(w_j, (α_rj / α_rq)² · w_q)` and
//!   `w_leaving ← max(w_q / α_rq², 1)`. The update rides on the sparse
//!   pivot row the reduced-cost maintenance computes anyway, so it is
//!   close to free. On LPs with heterogeneous column norms (the
//!   ill-scaled family in `BENCH_sparse.json`) devex needs measurably
//!   fewer iterations than Dantzig; on the replica relaxations
//!   themselves the constraint matrices are near-unimodular — every
//!   tableau entry is ±1, so `(α_rj/α_rq)² w_q = w_q` and the weights
//!   provably never leave 1 — and the two rules coincide pivot for
//!   pivot. The framework resets (all weights to 1) at every phase
//!   start and whenever a weight overflows [`DEVEX_RESET`].
//! * **Dantzig**: the classic most-negative reduced cost, `O(nnz)` per
//!   pass with no update cost — still the best choice for very short
//!   solves.
//! * **Bland**: smallest eligible index, the anti-cycling guarantee.
//!   Any rule degrades to Bland after `SimplexOptions::bland_after`
//!   iterations.
//!
//! The reduced costs `d_j = c_j − yᵀ a_j` are maintained
//! **incrementally**: the driver computes them from scratch (`O(nnz)`)
//! only at phase starts and refactorisations, and otherwise applies the
//! rank-one update `d ← d − (d_q/α_q)·α` after each pivot, where the
//! pivot row `α = Aᵀ B⁻ᵀ e_r` comes out of [`pivot_row_alphas`] —
//! computed **row-wise** over the nonzeros of `B⁻ᵀe_r` only, which on
//! the tree-structured replica bases touches a handful of rows. A
//! pricing pass is then a flat `O(n)` scan of `d` with no matrix access,
//! and the same sparse `α` drives the devex weight update for free.
//!
//! Dual side: the leaving row is the basic variable with the largest
//! bound violation; [`choose_dual_entering`] runs the dual ratio test
//! over the sparse pivot row to keep the reduced costs sign-feasible.

use super::basis::{BasisState, ColStatus, StandardForm};

/// Primal pricing rule of the revised simplex (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Pricing {
    /// Devex reference-framework pricing (Forrest–Goldfarb).
    #[default]
    Devex,
    /// Most-negative reduced cost.
    Dantzig,
    /// Smallest eligible index (anti-cycling; slow).
    Bland,
}

/// Weight magnitude that triggers a devex reference-framework reset.
const DEVEX_RESET: f64 = 1e7;

/// An entering candidate: the column and the direction it moves in
/// (`+1.0` away from its lower bound, `−1.0` away from its upper).
pub(crate) struct Entering {
    pub(crate) col: usize,
    pub(crate) sigma: f64,
}

/// Picks the entering column for a primal iteration from the
/// (incrementally maintained) reduced costs `d`, or `None` when none is
/// attractive. Artificial columns may be barred (phase 2). With
/// `devex_weights` present, candidates are ranked by `d_j² / w_j`
/// instead of `|d_j|`; `use_bland` overrides both with the smallest
/// eligible index. A flat `O(n)` scan — no matrix access at all.
pub(crate) fn choose_entering(
    form: &StandardForm,
    basis: &BasisState,
    d: &[f64],
    tol: f64,
    use_bland: bool,
    allow_artificial: bool,
    devex_weights: Option<&[f64]>,
) -> Option<Entering> {
    let art_base = form.art_base();
    let mut best: Option<(usize, f64, f64)> = None; // (col, sigma, metric)
    debug_assert_eq!(d.len(), form.num_cols());
    for (col, &reduced) in d.iter().enumerate() {
        let sigma = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => 1.0,
            ColStatus::Upper => -1.0,
        };
        if form.is_fixed(col) {
            continue;
        }
        if !allow_artificial && col >= art_base {
            continue;
        }
        // Attractive iff moving in `sigma` direction lowers the cost.
        let score = -sigma * reduced;
        if score > tol {
            if use_bland {
                return Some(Entering { col, sigma });
            }
            let metric = match devex_weights {
                Some(weights) => reduced * reduced / weights[col].max(1.0),
                None => score,
            };
            match best {
                Some((_, _, best_metric)) if metric <= best_metric => {}
                _ => best = Some((col, sigma, metric)),
            }
        }
    }
    best.map(|(col, sigma, _)| Entering { col, sigma })
}

/// Computes the sparse pivot row `α = Aᵀ·rho` **row-wise**: only
/// constraint rows with a nonzero `rho` entry are visited, so the cost
/// is proportional to the nonzeros of `rho` and their rows — on the
/// tree-structured replica bases a handful of entries, not `O(nnz)`.
/// The result lands in `(cols, vals)`; `acc` is a dense accumulator
/// that must be (and is left) all-zero.
pub(crate) fn pivot_row_alphas(
    form: &StandardForm,
    rho: &[f64],
    acc: &mut [f64],
    cols: &mut Vec<u32>,
    vals: &mut Vec<f64>,
) {
    cols.clear();
    vals.clear();
    debug_assert_eq!(acc.len(), form.num_cols());
    let n = form.n_struct;
    for (row, &r) in rho.iter().enumerate() {
        if r == 0.0 {
            continue;
        }
        // The slack of this row has a single +1 entry.
        let slack = n + row;
        if acc[slack] == 0.0 {
            cols.push(slack as u32);
        }
        acc[slack] += r;
        // Structural columns, via the CSR mirror.
        for k in form.row_ptr[row]..form.row_ptr[row + 1] {
            let col = form.row_cols[k] as usize;
            let contribution = form.row_vals[k] * r;
            if contribution != 0.0 {
                if acc[col] == 0.0 {
                    cols.push(col as u32);
                }
                acc[col] += contribution;
            }
        }
    }
    // Artificials: one signed entry each (the list is short).
    let art_base = form.art_base();
    for (a, &row) in form.art_rows.iter().enumerate() {
        let r = rho[row];
        if r != 0.0 {
            let col = art_base + a;
            if acc[col] == 0.0 {
                cols.push(col as u32);
            }
            acc[col] += form.art_signs[a] * r;
        }
    }
    // Gather and reset the accumulator (cancellations leave zeros in
    // `vals`, which every consumer skips).
    for &col in cols.iter() {
        vals.push(acc[col as usize]);
        acc[col as usize] = 0.0;
    }
}

/// Devex weight update after a pivot, from the sparse pivot row
/// `(alpha_cols, alpha_vals)` (computed on the *pre-pivot* basis):
/// `w_j ← max(w_j, (α_j/α_q)²·w_q)` for the touched nonbasic columns
/// and `w_leaving ← max(w_q/α_q², 1)`. Returns `true` when a weight
/// overflowed and the caller must reset the reference framework.
#[allow(clippy::too_many_arguments)]
pub(crate) fn devex_update(
    form: &StandardForm,
    basis: &BasisState,
    weights: &mut [f64],
    alpha_cols: &[u32],
    alpha_vals: &[f64],
    alpha_q: f64,
    wq: f64,
    leaving: usize,
) -> bool {
    let scale = wq / (alpha_q * alpha_q);
    let mut wmax = 0.0f64;
    for (&col, &alpha) in alpha_cols.iter().zip(alpha_vals) {
        let col = col as usize;
        if alpha == 0.0 {
            continue;
        }
        match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower | ColStatus::Upper => {}
        }
        if form.is_fixed(col) {
            continue;
        }
        let candidate = alpha * alpha * scale;
        if candidate > weights[col] {
            weights[col] = candidate;
            wmax = wmax.max(candidate);
        }
    }
    weights[leaving] = scale.max(1.0);
    wmax = wmax.max(weights[leaving]);
    wmax > DEVEX_RESET
}

/// A leaving candidate for the dual simplex: the row whose basic
/// variable violates a bound, and on which side.
pub(crate) struct Leaving {
    pub(crate) row: usize,
    /// `true` when the basic value exceeds its upper bound, `false`
    /// when it undershoots its lower bound.
    pub(crate) above: bool,
}

/// Picks the most-violated basic variable, or `None` when the basis is
/// primal feasible.
pub(crate) fn choose_leaving_row(
    form: &StandardForm,
    basis: &BasisState,
    tol: f64,
) -> Option<Leaving> {
    let mut best: Option<(Leaving, f64)> = None;
    for (row, &col) in basis.basic.iter().enumerate() {
        let value = basis.x_basic[row];
        let below = form.lower[col] - value;
        let above = value - form.upper[col];
        let (violation, is_above) = if above > below {
            (above, true)
        } else {
            (below, false)
        };
        if violation > tol {
            match best {
                Some((_, best_violation)) if violation <= best_violation => {}
                _ => {
                    best = Some((
                        Leaving {
                            row,
                            above: is_above,
                        },
                        violation,
                    ))
                }
            }
        }
    }
    best.map(|(leaving, _)| leaving)
}

/// Dual ratio test: given the sparse pivot row `(alpha_cols,
/// alpha_vals)` (see [`pivot_row_alphas`]) and the reduced costs `d`,
/// picks the nonbasic column that limits the dual step, keeping every
/// reduced cost on its feasible side. Returns `None` when no column is
/// eligible — the primal is infeasible. Only the pivot row's nonzeros
/// are visited; a column with zero `α` can never be eligible.
pub(crate) fn choose_dual_entering(
    form: &StandardForm,
    basis: &BasisState,
    d: &[f64],
    alpha_cols: &[u32],
    alpha_vals: &[f64],
    above: bool,
    pivot_tol: f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
    debug_assert_eq!(d.len(), form.num_cols());
    for (&col, &alpha) in alpha_cols.iter().zip(alpha_vals) {
        let col = col as usize;
        let at_lower = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => true,
            ColStatus::Upper => false,
        };
        if form.is_fixed(col) {
            continue;
        }
        if alpha.abs() <= pivot_tol {
            continue;
        }
        // The leaving basic must move back towards its violated bound:
        //   below lower (above = false): needs Δx_B[r] > 0, i.e. α·Δx_j < 0;
        //   above upper (above = true):  needs Δx_B[r] < 0, i.e. α·Δx_j > 0.
        // At-lower columns can only increase, at-upper only decrease.
        let eligible = if above {
            (at_lower && alpha > 0.0) || (!at_lower && alpha < 0.0)
        } else {
            (at_lower && alpha < 0.0) || (!at_lower && alpha > 0.0)
        };
        if !eligible {
            continue;
        }
        let ratio = d[col].abs() / alpha.abs();
        let better = match best {
            None => true,
            Some((_, best_ratio, best_alpha)) => {
                ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && alpha.abs() > best_alpha)
            }
        };
        if better {
            best = Some((col, ratio, alpha.abs()));
        }
    }
    best.map(|(col, _, _)| col)
}
