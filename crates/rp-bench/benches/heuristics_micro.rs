//! Micro-benchmarks of the eight heuristics (plus MixedBest) on fixed
//! trees of increasing problem size, homogeneous and heterogeneous.
//!
//! The paper argues all heuristics are worst-case quadratic in the
//! problem size `s = |C| + |N|`; these benchmarks make the constant
//! factors and the actual scaling visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_bench::{bench_instance, MICRO_SIZES};
use rp_core::Heuristic;
use rp_workloads::platform::PlatformKind;

fn bench_heuristics(c: &mut Criterion) {
    for (platform, platform_name) in [
        (PlatformKind::default_homogeneous(), "homogeneous"),
        (PlatformKind::default_heterogeneous(), "heterogeneous"),
    ] {
        let mut group = c.benchmark_group(format!("heuristics_{platform_name}"));
        group.sample_size(20);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for &size in &MICRO_SIZES {
            let problem = bench_instance(size, 0.5, platform, 1234 + size as u64);
            for heuristic in Heuristic::ALL {
                group.bench_with_input(
                    BenchmarkId::new(heuristic.full_name(), size),
                    &problem,
                    |b, problem| b.iter(|| heuristic.run(problem)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
