//! Micro-benchmarks of the eight heuristics (plus MixedBest) on fixed
//! trees of increasing problem size, homogeneous and heterogeneous.
//!
//! The paper argues all heuristics are worst-case quadratic in the
//! problem size `s = |C| + |N|`; these benchmarks make the constant
//! factors and the actual scaling visible.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_bench::{bench_instance, MICRO_SIZES};
use rp_core::heuristics::HeuristicState;
use rp_core::Heuristic;
use rp_workloads::platform::PlatformKind;

fn bench_heuristics(c: &mut Criterion) {
    for (platform, platform_name) in [
        (PlatformKind::default_homogeneous(), "homogeneous"),
        (PlatformKind::default_heterogeneous(), "heterogeneous"),
    ] {
        let mut group = c.benchmark_group(format!("heuristics_{platform_name}"));
        group.sample_size(20);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for &size in &MICRO_SIZES {
            let problem = bench_instance(size, 0.5, platform, 1234 + size as u64);
            for heuristic in Heuristic::ALL {
                group.bench_with_input(
                    BenchmarkId::new(heuristic.full_name(), size),
                    &problem,
                    |b, problem| b.iter(|| heuristic.run(problem)),
                );
            }
        }
        group.finish();
    }
}

/// The allocation-free steady-state path: one [`HeuristicState`] reused
/// (via `reset`) across runs, exactly as MixedBest drives it. Comparing
/// against the `heuristics_*` groups above shows what per-call state
/// construction costs.
fn bench_state_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics_state_reuse");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &size in &MICRO_SIZES {
        let problem = bench_instance(
            size,
            0.5,
            PlatformKind::default_homogeneous(),
            1234 + size as u64,
        );
        let mut state = HeuristicState::new(&problem);
        for heuristic in Heuristic::BASE {
            group.bench_function(BenchmarkId::new(heuristic.full_name(), size), |b| {
                b.iter(|| {
                    state.reset();
                    black_box(heuristic.run_with(&mut state))
                })
            });
        }
    }
    group.finish();
}

/// The traversal primitives every inner loop leans on: lazy ancestor
/// iteration, O(1) ancestor interval checks and zero-copy subtree
/// slices.
fn bench_traversal_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &size in &MICRO_SIZES {
        let problem = bench_instance(size, 0.5, PlatformKind::default_homogeneous(), 99);
        let tree = problem.tree();
        group.bench_function(BenchmarkId::new("ancestors_all_clients", size), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for client in tree.client_ids() {
                    for node in tree.ancestors_of_client(client) {
                        acc += node.index();
                    }
                }
                black_box(acc)
            })
        });
        let nodes: Vec<_> = tree.node_ids().collect();
        group.bench_function(BenchmarkId::new("ancestor_check_all_pairs", size), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &a in &nodes {
                    for &b in &nodes {
                        hits += usize::from(tree.node_is_ancestor_or_self(a, b));
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::new("subtree_clients_all_nodes", size), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &node in &nodes {
                    for &client in tree.subtree_clients(node) {
                        total += problem.requests(client);
                    }
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_state_reuse,
    bench_traversal_primitives
);
criterion_main!(benches);
