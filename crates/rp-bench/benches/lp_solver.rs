//! Benchmarks of the LP-based lower bounds (Section 7.1): the fully
//! rational relaxation versus the mixed bound (integral `x_j`), across
//! problem sizes. The paper computed these with GLPK; this documents
//! what the bundled simplex/branch-and-bound substitute costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_bench::bench_instance;
use rp_core::ilp::{
    build_model, lower_bound, lower_bound_with, BoundKind, IlpOptions, Integrality,
};
use rp_core::Policy;
use rp_lp::{
    solve_lp, solve_lp_reusing, solve_lp_revised_reusing, BranchBoundOptions, LpEngine,
    RevisedWorkspace, SimplexOptions, SimplexWorkspace,
};
use rp_workloads::platform::PlatformKind;

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_lower_bounds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    // Cap the branch-and-bound effort for the mixed bound so one bench
    // iteration stays bounded; the bound remains valid when truncated.
    let capped = IlpOptions {
        branch_bound: BranchBoundOptions {
            max_nodes: 100,
            ..BranchBoundOptions::default()
        },
    };
    for size in [20usize, 40, 80] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);
        group.bench_with_input(BenchmarkId::new("rational", size), &problem, |b, p| {
            b.iter(|| lower_bound(p, BoundKind::Rational))
        });
        if size <= 40 {
            group.bench_with_input(BenchmarkId::new("mixed_capped", size), &problem, |b, p| {
                b.iter(|| lower_bound_with(p, BoundKind::Mixed, &capped))
            });
        }
    }
    group.finish();
}

fn bench_simplex_on_formulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_multiple_relaxation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [20usize, 40, 80, 120] {
        let problem = bench_instance(size, 0.5, PlatformKind::default_homogeneous(), 57);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        group.bench_with_input(
            BenchmarkId::new("solve_lp", size),
            &formulation.model,
            |b, model| b.iter(|| solve_lp(model)),
        );
        // The branch-and-bound inner loop path: tableau buffers reused
        // across solves instead of reallocated per call.
        let mut workspace = SimplexWorkspace::new();
        let options = SimplexOptions::default();
        group.bench_with_input(
            BenchmarkId::new("solve_lp_reusing", size),
            &formulation.model,
            |b, model| b.iter(|| solve_lp_reusing(model, &options, &mut workspace)),
        );
    }
    group.finish();
}

/// The headline comparison: dense tableau vs revised simplex on the
/// same Multiple-relaxation models, plus the warm-started revised
/// branch-and-bound for the mixed bound. The `baseline` binary's
/// `BENCH_revised.json` tracks the same ratios outside criterion.
fn bench_lp_revised(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_revised");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [20usize, 40, 80, 120] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let options = SimplexOptions::default();
        let mut dense_ws = SimplexWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new("dense_tableau", size),
            &formulation.model,
            |b, model| b.iter(|| solve_lp_reusing(model, &options, &mut dense_ws)),
        );
        let mut revised_ws = RevisedWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new("revised", size),
            &formulation.model,
            |b, model| b.iter(|| solve_lp_revised_reusing(model, &options, &mut revised_ws)),
        );
    }
    // Warm-started mixed bound (integral x_j) with the revised engine.
    {
        let problem = bench_instance(40, 0.6, PlatformKind::default_heterogeneous(), 31);
        let capped = IlpOptions {
            branch_bound: BranchBoundOptions {
                max_nodes: 100,
                engine: LpEngine::Revised,
                ..BranchBoundOptions::default()
            },
        };
        group.bench_function("mixed_warm_bb/40", |b| {
            b.iter(|| lower_bound_with(&problem, BoundKind::Mixed, &capped))
        });
    }
    group.finish();
}

/// The sparse-factorisation subsystem: cold solves under devex vs
/// Dantzig pricing, the warm sibling re-solve fast path, and the
/// hyper-sparse unit FTRAN/BTRAN plus one Markowitz refactorisation on
/// a solved paper-scale basis. `BENCH_sparse.json` (baseline binary)
/// tracks the same quantities outside criterion.
fn bench_sparse_lu(c: &mut Criterion) {
    use rp_lp::Pricing;

    let mut group = c.benchmark_group("lp_sparse_lu");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let devex = SimplexOptions::default();
    let dantzig = SimplexOptions {
        pricing: Pricing::Dantzig,
        ..SimplexOptions::default()
    };
    for size in [40usize, 120] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut ws = RevisedWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new("solve_devex", size),
            &formulation.model,
            |b, model| b.iter(|| ws.solve_cold(model, &devex)),
        );
        group.bench_with_input(
            BenchmarkId::new("solve_dantzig", size),
            &formulation.model,
            |b, model| b.iter(|| ws.solve_cold(model, &dantzig)),
        );
        // Sibling fast path: the matrix is unchanged, so the warm solve
        // is a refactorisation plus a handful of cleanup pivots.
        ws.solve_cold(&formulation.model, &devex);
        group.bench_with_input(
            BenchmarkId::new("resolve_warm", size),
            &formulation.model,
            |b, model| b.iter(|| ws.solve_warm(model, &devex)),
        );
    }
    {
        let problem = bench_instance(400, 0.4, PlatformKind::default_heterogeneous(), 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut ws = RevisedWorkspace::new();
        ws.solve_cold(&formulation.model, &devex);
        let mut unit = 0usize;
        group.bench_function("ftran_unit/400", |b| {
            b.iter(|| {
                ws.bench_ftran_unit(unit);
                unit = unit.wrapping_add(1);
            })
        });
        group.bench_function("btran_unit/400", |b| {
            b.iter(|| {
                ws.bench_btran_unit(unit);
                unit = unit.wrapping_add(1);
            })
        });
        group.bench_function("markowitz_refactor/400", |b| b.iter(|| ws.bench_refactor()));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lower_bounds,
    bench_simplex_on_formulations,
    bench_lp_revised,
    bench_sparse_lu
);
criterion_main!(benches);
