//! Figure 9 — homogeneous platforms, percentage of success per λ.
//!
//! The benchmark times a scaled-down version of the sweep that
//! regenerates the figure (the full-size series is produced by
//! `cargo run --release -p rp-bench --bin reproduce -- fig9`), and
//! prints the resulting table once so the series is visible in the
//! benchmark log.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::mini_figure_config;
use rp_experiments::figures::{reproduce_figure_with, FigureId};

fn bench_figure09(c: &mut Criterion) {
    let figure = FigureId::Fig9HomogeneousSuccess;
    let config = mini_figure_config(figure);

    // Print the series once, outside the measurement loop.
    let report = reproduce_figure_with(figure, &config);
    println!("\n{}\n", report.to_markdown());

    let mut group = c.benchmark_group("figure09");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("homogeneous_success_sweep", |b| {
        b.iter(|| reproduce_figure_with(figure, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_figure09);
criterion_main!(benches);
