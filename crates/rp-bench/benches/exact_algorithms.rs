//! Benchmarks of the exact solvers (Table 1's positive results):
//!
//! * the paper's polynomial algorithm for Multiple/homogeneous
//!   (Section 4.1), scaled well past the experiment sizes to show its
//!   asymptotic behaviour;
//! * the exhaustive oracle and the exact ILP on small instances, to
//!   document the cost of exactness on the NP-complete variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_bench::bench_instance;
use rp_core::exact::{solve_exhaustive, solve_multiple_homogeneous};
use rp_core::ilp::solve_exact_ilp;
use rp_core::Policy;
use rp_workloads::platform::PlatformKind;

fn bench_multiple_homogeneous(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_multiple_homogeneous");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [50usize, 200, 800, 3200] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_homogeneous(), 77);
        group.bench_with_input(BenchmarkId::new("three_pass", size), &problem, |b, p| {
            b.iter(|| solve_multiple_homogeneous(p))
        });
    }
    group.finish();
}

fn bench_small_exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_small_instances");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let problem = bench_instance(16, 0.5, PlatformKind::default_heterogeneous(), 9);
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::new("exhaustive", policy.name()),
            &problem,
            |b, p| b.iter(|| solve_exhaustive(p, policy)),
        );
        group.bench_with_input(BenchmarkId::new("ilp", policy.name()), &problem, |b, p| {
            b.iter(|| solve_exact_ilp(p, policy))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_multiple_homogeneous,
    bench_small_exact_solvers
);
criterion_main!(benches);
