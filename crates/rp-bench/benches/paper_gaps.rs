//! The policy-separation constructions of Section 3 (Figures 2 and 3):
//! how quickly the exact solvers and the heuristics handle the
//! adversarial instances, as the gap parameter `n` grows.
//!
//! These are the instances where Upwards beats Closest by an unbounded
//! factor (Figure 2) and Multiple approaches a factor 2 over Upwards
//! (Figure 3); the printed costs document the gap itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_core::exact::{optimal_cost, solve_multiple_homogeneous};
use rp_core::Heuristic;
use rp_workloads::paper_examples::{figure2, figure3};

fn bench_figure2(c: &mut Criterion) {
    // Print the gap table once: Upwards stays at 3 replicas, Closest
    // needs n + 2.
    println!("\nFigure 2 gap (exact costs):");
    for n in [2u64, 3] {
        let p = figure2(n);
        println!(
            "  n = {n}: Closest = {:?}, Upwards = {:?}",
            optimal_cost(&p, rp_core::Policy::Closest),
            optimal_cost(&p, rp_core::Policy::Upwards),
        );
    }

    let mut group = c.benchmark_group("figure2_construction");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [2u64, 4, 8, 16] {
        let p = figure2(n);
        group.bench_with_input(BenchmarkId::new("ubcf", n), &p, |b, p| {
            b.iter(|| Heuristic::Ubcf.run(p))
        });
        group.bench_with_input(BenchmarkId::new("cbu", n), &p, |b, p| {
            b.iter(|| Heuristic::Cbu.run(p))
        });
        group.bench_with_input(BenchmarkId::new("mixed_best", n), &p, |b, p| {
            b.iter(|| Heuristic::MixedBest.run(p))
        });
    }
    group.finish();
}

fn bench_figure3(c: &mut Criterion) {
    println!("\nFigure 3 gap (Multiple optimum = n + 1):");
    for n in [2u64, 3] {
        let p = figure3(n);
        let multiple = solve_multiple_homogeneous(&p)
            .into_placement()
            .map(|pl| pl.num_replicas());
        println!(
            "  n = {n}: Multiple = {:?}, Upwards = {:?}",
            multiple,
            optimal_cost(&p, rp_core::Policy::Upwards),
        );
    }

    let mut group = c.benchmark_group("figure3_construction");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [2u64, 8, 32, 128] {
        let p = figure3(n);
        group.bench_with_input(BenchmarkId::new("optimal_multiple", n), &p, |b, p| {
            b.iter(|| solve_multiple_homogeneous(p))
        });
        group.bench_with_input(BenchmarkId::new("mg", n), &p, |b, p| {
            b.iter(|| Heuristic::Mg.run(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure2, bench_figure3);
criterion_main!(benches);
