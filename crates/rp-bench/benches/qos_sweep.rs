//! QoS extension — homogeneous platforms with a uniform distance bound.
//!
//! The benchmark times a scaled-down version of the sweep that
//! regenerates the figure (the full-size series is produced by
//! `cargo run --release -p rp-bench --bin reproduce -- qos`), and
//! prints the resulting table once so the series is visible in the
//! benchmark log.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bench::mini_figure_config;
use rp_experiments::figures::{reproduce_figure_with, FigureId};

fn bench_sweep(c: &mut Criterion) {
    let figure = FigureId::QosSweep;
    let config = mini_figure_config(figure);

    // Print the series once, outside the measurement loop.
    let report = reproduce_figure_with(figure, &config);
    println!("\n{}\n", report.to_markdown());

    let mut group = c.benchmark_group("qos_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("qos_bounded_sweep", |b| {
        b.iter(|| reproduce_figure_with(figure, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
