//! # rp-bench — benchmarks and figure reproduction
//!
//! * `src/bin/reproduce.rs` — regenerates the data series behind every
//!   reproduced figure (`cargo run --release -p rp-bench --bin reproduce -- all`);
//! * `benches/` — criterion benchmarks: one scaled-down sweep per figure
//!   plus micro-benchmarks of the heuristics, the exact algorithms and
//!   the LP solver.
//!
//! This crate contains shared helpers for the benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rp_core::ProblemInstance;
use rp_workloads::platform::{generate_problem, PlatformKind, WorkloadConfig};
use rp_workloads::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

/// Builds a deterministic benchmark instance of problem size `s` with
/// load factor `lambda` on the given platform.
pub fn bench_instance(s: usize, lambda: f64, platform: PlatformKind, seed: u64) -> ProblemInstance {
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(s, TreeShape::RandomAttachment),
        seed,
    );
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0xABCD)
}

/// The problem sizes exercised by the micro-benchmarks.
pub const MICRO_SIZES: [usize; 3] = [50, 150, 400];

/// A scaled-down experiment configuration for the per-figure criterion
/// benchmarks: small trees and few repetitions so a benchmark iteration
/// stays in the tens of milliseconds, while still exercising the exact
/// code path that regenerates the figure.
pub fn mini_figure_config(figure: rp_experiments::FigureId) -> rp_experiments::ExperimentConfig {
    let mut config = figure.config();
    config.lambdas = vec![0.2, 0.5, 0.8];
    config.trees_per_lambda = 4;
    config.size_range = (15, 40);
    config.threads = Some(1); // criterion wants single-threaded, stable timings
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instances_are_deterministic_and_sized() {
        let a = bench_instance(80, 0.5, PlatformKind::default_homogeneous(), 3);
        let b = bench_instance(80, 0.5, PlatformKind::default_homogeneous(), 3);
        assert_eq!(a.tree().problem_size(), 80);
        assert_eq!(a.total_requests(), b.total_requests());
        assert!((a.load_factor() - 0.5).abs() < 0.05);
    }
}
