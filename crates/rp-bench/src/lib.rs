//! # rp-bench — benchmarks and figure reproduction
//!
//! * `src/bin/reproduce.rs` — regenerates the data series behind every
//!   reproduced figure (`cargo run --release -p rp-bench --bin reproduce -- all`);
//! * `benches/` — criterion benchmarks: one scaled-down sweep per figure
//!   plus micro-benchmarks of the heuristics, the exact algorithms and
//!   the LP solver;
//! * `src/bin/baseline.rs` — the machine-readable perf snapshots
//!   (`BENCH_*.json`), the CI smoke gates (`--smoke-revised`,
//!   `--smoke-bandwidth`, `--smoke-heuristics`, `--smoke-failures`,
//!   `--smoke-obs`) and the `perf-budget.toml` regression gate
//!   (`--check-budget`).
//!
//! This crate contains shared helpers for the benchmarks.
//!
//! # Reading a trace
//!
//! Every layer of the workspace is instrumented through `rp-obs`
//! (metric catalogue: `crates/rp-obs/src/catalogue.md`). To capture a
//! timeline of a real solve, ask `reproduce` for one — the flags imply
//! `ObsMode::Full`:
//!
//! ```text
//! cargo run --release -p rp-bench --bin reproduce -- bandwidth \
//!     --trace out.trace.json --metrics out.metrics.json
//! ```
//!
//! Open `out.trace.json` in `chrome://tracing` (or <https://ui.perfetto.dev>).
//! The file is the Chrome trace-event JSON array format; what you see:
//!
//! * **One row per worker thread** of the λ-sharded pool (`tid 0` is
//!   the main thread; workers flush their buffered events when the
//!   pool joins).
//! * **`exp.trial` blocks** — one per (λ, tree) pair. Inside each
//!   trial the nesting mirrors the harness: an `exp.lp_bound` span for
//!   the LP bound, an `exp.heuristics` span for the candidate
//!   placements, and — on the scenario sweeps — `core.lpg.round` for
//!   the LP-guided rounding/repair pipeline.
//! * **`lp.solve` spans** under them: every entry into the revised
//!   simplex, warm or cold. In the `bandwidth` sweep above, the first
//!   solve of an instance is the long block; its sibling λ re-solves
//!   are the short blocks right after it — that visible length ratio
//!   *is* the warm-start win the registry reports as `lp.warm.rate`.
//! * **Heuristic spans named by acronym** (`MG`, `CTDA`, `UBCF`, …)
//!   inside the heuristics phase, and `core.repair` spans on the
//!   resilience sweeps.
//!
//! The matching `out.metrics.json` holds the aggregate registry
//! (counters, gauges, `lp.solve_us`-style histograms with exact
//! nearest-rank p50/p99, and derived ratios such as the FTRAN sparse
//! skip rate) for the same run; `BENCH_obs.json` from the baseline
//! binary is the checked-in snapshot of the same document on the
//! reference workload.
//!
//! # Reading a flight-recorder dump
//!
//! The flight recorder keeps a bounded ring of the most recent solves
//! and snapshots it to JSONL whenever an anomaly fires: a budget miss,
//! a solve slower than 8× the running median, a dense-oracle
//! escalation, or an rp-online rollback. Set `RP_FLIGHT_DUMP` to a
//! path (with at least `RP_OBS=counters`) and the latest dump lands
//! there; the perf-budget gate also writes one as
//! `obs-breach.flight.jsonl` on any breach. Force one on demand with a
//! deliberately impossible per-apply budget:
//!
//! ```text
//! RP_OBS=counters RP_FLIGHT_DUMP=flight.jsonl \
//!     cargo run --release -p rp-bench --bin reproduce -- \
//!     churn --quick --budget-ms 1
//! ```
//!
//! The dump is line-oriented JSON. The first line is the meta header —
//! `{"type":"flight_dump","reason":"rollback","records":30,...}` —
//! naming which anomaly tripped the snapshot. Every following line is
//! one `{"type":"solve",...}` record, oldest first: the instance shape
//! (`rows`/`cols`), the warm-start class, status, iteration count,
//! `solve_us`, whether the budget was missed, and the per-phase
//! breakdown (`phase_ns`/`phase_calls` over pricing, ftran, btran,
//! ratio_test, factorise, ft_update, presolve, scaling, extract).
//! Read it back to front: the last records are the solves leading into
//! the anomaly, and a phase whose share of `phase_total_ns` balloons
//! relative to earlier records names the mechanism — e.g. `factorise`
//! dominating where `ft_update` used to means the Forrest–Tomlin
//! update started refusing pivots.
//!
//! # Reading an obs-diff report
//!
//! `baseline -- --obs-diff OLD.json [NEW.json]` compares two metrics
//! snapshots (omit `NEW.json` to compare against a fresh run of the
//! reference workload) and ranks every counter, gauge, histogram stat
//! and derived ratio by relative movement, `|new − old| / max(|old|, 1)`:
//!
//! ```text
//! obs-diff: 12 of 152 metrics moved (top 25 below)
//!   counters.lp.refactor.count: 18 -> 124 (+588.9%)
//!   counters.lp.phase.factorise_ns: 236221 -> 1893002 (+701.4%)
//!   ...
//! ```
//!
//! The top movers *are* the attribution: a wall-time regression with
//! `lp.refactor.count` and `lp.phase.factorise_ns` leading the list is
//! a factorisation-stability problem, one led by `lp.queue.rebuilds`
//! and `lp.phase.pricing_ns` is a pricing problem. The perf-budget
//! gate prints exactly this report (against the checked-in
//! `BENCH_obs.json`) whenever a ceiling is breached, and saves it as
//! `obs-breach.diff.txt` next to `obs-breach.metrics.json` and
//! `obs-breach.flight.jsonl`. Re-measure just the breached section
//! with a filter: `--check-budget lp` (or `warm` / `hardened` /
//! `obs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rp_core::ProblemInstance;
use rp_workloads::platform::{generate_problem, PlatformKind, WorkloadConfig};
use rp_workloads::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

/// Builds a deterministic benchmark instance of problem size `s` with
/// load factor `lambda` on the given platform.
pub fn bench_instance(s: usize, lambda: f64, platform: PlatformKind, seed: u64) -> ProblemInstance {
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(s, TreeShape::RandomAttachment),
        seed,
    );
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0xABCD)
}

/// The problem sizes exercised by the micro-benchmarks.
pub const MICRO_SIZES: [usize; 3] = [50, 150, 400];

/// A scaled-down experiment configuration for the per-figure criterion
/// benchmarks: small trees and few repetitions so a benchmark iteration
/// stays in the tens of milliseconds, while still exercising the exact
/// code path that regenerates the figure.
pub fn mini_figure_config(figure: rp_experiments::FigureId) -> rp_experiments::ExperimentConfig {
    let mut config = figure.config();
    config.lambdas = vec![0.2, 0.5, 0.8];
    config.trees_per_lambda = 4;
    config.size_range = (15, 40);
    config.threads = Some(1); // criterion wants single-threaded, stable timings
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instances_are_deterministic_and_sized() {
        let a = bench_instance(80, 0.5, PlatformKind::default_homogeneous(), 3);
        let b = bench_instance(80, 0.5, PlatformKind::default_homogeneous(), 3);
        assert_eq!(a.tree().problem_size(), 80);
        assert_eq!(a.total_requests(), b.total_requests());
        assert!((a.load_factor() - 0.5).abs() < 0.05);
    }
}
