//! Regenerates the data series behind every reproduced figure of the
//! paper (Figures 9–12 plus the QoS extension sweep) and the
//! problem-variant scenario sweeps (bandwidth-constrained and
//! multi-object LP bounds).
//!
//! ```text
//! # the full default sweeps (30 trees per λ, sizes 15..=100):
//! cargo run --release -p rp-bench --bin reproduce -- all
//!
//! # the paper-scale sweeps (sizes 15..=400, sparse-LU revised engine):
//! cargo run --release -p rp-bench --bin reproduce -- paper
//!
//! # the bandwidth-constrained / multi-object scenario sweeps:
//! cargo run --release -p rp-bench --bin reproduce -- bandwidth
//! cargo run --release -p rp-bench --bin reproduce -- multi
//!
//! # the resilience sweep (single failures, survival/degradation table):
//! cargo run --release -p rp-bench --bin reproduce -- failures
//!
//! # the online churn sweep (2000 deltas per policy, apply latency):
//! cargo run --release -p rp-bench --bin reproduce -- churn
//!
//! # one figure, smaller and faster:
//! cargo run --release -p rp-bench --bin reproduce -- fig9 --quick
//!
//! # write CSV files next to the printed markdown:
//! cargo run --release -p rp-bench --bin reproduce -- all --out results/
//!
//! # capture a chrome://tracing timeline and the metrics snapshot
//! # (both flags switch observability to `full` for the run):
//! cargo run --release -p rp-bench --bin reproduce -- bandwidth \
//!     --trace out.trace.json --metrics out.metrics.json
//! ```
//!
//! The printed tables have one row per load factor λ and one column per
//! heuristic (figures) or per bound metric (scenarios) — the same
//! series as the paper's plots.

use std::path::PathBuf;

use rp_experiments::churn::{churn_markdown, churn_table, run_churn, ChurnRunConfig};
use rp_experiments::failures::{
    resilience_markdown, resilience_table, run_resilience, ResilienceConfig,
};
use rp_experiments::figures::{
    check_cost_shape, check_success_shape, reproduce_figure_with, FigureId,
};
use rp_experiments::runner::{run_sweep, ExperimentConfig};
use rp_experiments::scenarios::{
    run_scenario, scenario_markdown, scenario_table, ScenarioConfig, ScenarioFamily,
};

struct CliOptions {
    figures: Vec<FigureId>,
    scenarios: Vec<ScenarioFamily>,
    resilience: bool,
    churn: bool,
    quick: bool,
    budget_ms: Option<u64>,
    trees: Option<usize>,
    size_max: Option<usize>,
    out_dir: Option<PathBuf>,
    check_shape: bool,
    bound: Option<rp_core::ilp::BoundKind>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut figures = Vec::new();
    let mut scenarios = Vec::new();
    let mut resilience = false;
    let mut churn = false;
    let mut quick = false;
    let mut budget_ms = None;
    let mut trees = None;
    let mut size_max = None;
    let mut out_dir = None;
    let mut check_shape = false;
    let mut bound = None;
    let mut trace_out = None;
    let mut metrics_out = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "all" => figures.extend(FigureId::STANDARD),
            "paper" => figures.extend(FigureId::PAPER_SCALE),
            "bandwidth" => scenarios.extend([
                ScenarioFamily::Bandwidth,
                ScenarioFamily::BandwidthIllScaled,
            ]),
            "multi" => scenarios.extend([
                ScenarioFamily::MultiObject,
                ScenarioFamily::MultiObjectBandwidth,
            ]),
            "failures" => resilience = true,
            "churn" => churn = true,
            "--quick" => quick = true,
            "--check-shape" => check_shape = true,
            "--budget-ms" => {
                let value = iter.next().ok_or("--budget-ms needs a value")?;
                budget_ms = Some(value.parse().map_err(|_| "invalid --budget-ms value")?);
            }
            "--trees" => {
                let value = iter.next().ok_or("--trees needs a value")?;
                trees = Some(value.parse().map_err(|_| "invalid --trees value")?);
            }
            "--size-max" => {
                let value = iter.next().ok_or("--size-max needs a value")?;
                size_max = Some(value.parse().map_err(|_| "invalid --size-max value")?);
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a directory")?;
                out_dir = Some(PathBuf::from(value));
            }
            "--trace" => {
                let value = iter.next().ok_or("--trace needs a file path")?;
                trace_out = Some(PathBuf::from(value));
            }
            "--metrics" => {
                let value = iter.next().ok_or("--metrics needs a file path")?;
                metrics_out = Some(PathBuf::from(value));
            }
            "--bound" => {
                let value = iter.next().ok_or("--bound needs `rational` or `mixed`")?;
                bound = Some(match value.as_str() {
                    "rational" => rp_core::ilp::BoundKind::Rational,
                    "mixed" => rp_core::ilp::BoundKind::Mixed,
                    other => return Err(format!("unknown bound kind `{other}`")),
                });
            }
            key => match (FigureId::from_key(key), ScenarioFamily::from_key(key)) {
                (Some(figure), _) => figures.push(figure),
                (None, Some(family)) => scenarios.push(family),
                (None, None) => return Err(format!("unknown argument `{key}`")),
            },
        }
    }
    if figures.is_empty() && scenarios.is_empty() && !resilience && !churn {
        figures.extend(FigureId::STANDARD);
    }
    figures.dedup();
    scenarios.dedup();
    Ok(CliOptions {
        figures,
        scenarios,
        resilience,
        churn,
        quick,
        budget_ms,
        trees,
        size_max,
        out_dir,
        check_shape,
        bound,
        trace_out,
        metrics_out,
    })
}

/// Writes the trace/metrics exports requested on the command line.
/// Called once, after every sweep has completed and the λ-sharded
/// worker pools have joined (their thread-local trace buffers flush on
/// join; the exporter flushes the main thread itself).
fn export_observability(options: &CliOptions) {
    if let Some(path) = &options.trace_out {
        if let Err(error) = rp_obs::write_chrome_trace(path) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
        eprintln!("  wrote {}", path.display());
    }
    if let Some(path) = &options.metrics_out {
        if let Err(error) = rp_obs::write_metrics_json(path) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
        eprintln!("  wrote {}", path.display());
    }
}

fn configure(figure: FigureId, options: &CliOptions) -> ExperimentConfig {
    let mut config = figure.config();
    if options.quick {
        config.trees_per_lambda = 8;
        config.size_range = (15, 40);
    }
    if let Some(trees) = options.trees {
        config.trees_per_lambda = trees;
    }
    if let Some(size_max) = options.size_max {
        config.size_range = (config.size_range.0.min(size_max), size_max);
    }
    if let Some(bound) = options.bound {
        config.bound = bound;
    }
    config
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: reproduce [all|paper|bandwidth|multi|failures|churn|fig9|fig10|fig11|fig12|qos\
                 |paper-success|paper-cost|bandwidth-ill|multi-bandwidth]... \
                 [--quick] [--trees N] [--size-max S] [--budget-ms MS] \
                 [--bound rational|mixed] \
                 [--out DIR] [--check-shape] [--trace FILE] [--metrics FILE]"
            );
            std::process::exit(2);
        }
    };

    // `RP_OBS` can select any mode; asking for an export implies `full`
    // (a trace of an uninstrumented run would be empty).
    rp_obs::init_from_env();
    if options.trace_out.is_some() || options.metrics_out.is_some() {
        rp_obs::set_mode(rp_obs::ObsMode::Full);
    }

    if let Some(dir) = &options.out_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {error}", dir.display());
            std::process::exit(1);
        }
    }

    let mut shape_failures = 0usize;
    let mut unverified_repairs = 0usize;
    for &figure in &options.figures {
        let config = configure(figure, &options);
        eprintln!(
            "running {} ({} trees per λ, sizes {}..={}) ...",
            figure.key(),
            config.trees_per_lambda,
            config.size_range.0,
            config.size_range.1
        );
        let started = std::time::Instant::now();
        let report = reproduce_figure_with(figure, &config);
        eprintln!("  done in {:.1}s", started.elapsed().as_secs_f64());

        println!("{}", report.to_markdown());

        if let Some(dir) = &options.out_dir {
            let path = dir.join(format!("{}.csv", figure.key()));
            if let Err(error) = std::fs::write(&path, report.table.to_csv()) {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("  wrote {}", path.display());
        }

        if options.check_shape {
            let results = run_sweep(&config);
            let violations = match figure {
                FigureId::Fig9HomogeneousSuccess
                | FigureId::Fig11HeterogeneousSuccess
                | FigureId::QosSweep
                | FigureId::PaperScaleSuccess => check_success_shape(&results),
                FigureId::Fig10HomogeneousCost
                | FigureId::Fig12HeterogeneousCost
                | FigureId::PaperScaleCost => check_cost_shape(&results),
            };
            if violations.is_empty() {
                eprintln!("  shape check: OK");
            } else {
                shape_failures += violations.len();
                for violation in violations {
                    eprintln!("  shape check FAILED: {violation}");
                }
            }
        }
    }

    for &family in &options.scenarios {
        let mut config = ScenarioConfig::new(family);
        if options.quick {
            config.trees_per_lambda = 4;
            config.problem_size = 60;
        }
        if let Some(trees) = options.trees {
            config.trees_per_lambda = trees;
        }
        if let Some(size_max) = options.size_max {
            config.problem_size = size_max;
        }
        eprintln!(
            "running scenario {} ({} trees per λ, s = {}) ...",
            family.key(),
            config.trees_per_lambda,
            config.problem_size
        );
        let started = std::time::Instant::now();
        let results = run_scenario(&config);
        eprintln!("  done in {:.1}s", started.elapsed().as_secs_f64());

        println!("{}", scenario_markdown(&results));

        if let Some(dir) = &options.out_dir {
            let path = dir.join(format!("{}.csv", family.key()));
            if let Err(error) = std::fs::write(&path, scenario_table(&results).to_csv()) {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("  wrote {}", path.display());
        }
    }

    if options.resilience {
        let mut config = ResilienceConfig::new();
        if options.quick {
            config.trials = 40;
            config.problem_size = 100;
        }
        if let Some(trees) = options.trees {
            config.trials = trees;
        }
        if let Some(size_max) = options.size_max {
            config.problem_size = size_max;
        }
        eprintln!(
            "running resilience sweep ({} trials, s = {}, seed = {}) ...",
            config.trials, config.problem_size, config.seed
        );
        let started = std::time::Instant::now();
        let results = run_resilience(&config);
        eprintln!("  done in {:.1}s", started.elapsed().as_secs_f64());

        println!("{}", resilience_markdown(&results));

        unverified_repairs = results.total_unverified();
        if let Some(dir) = &options.out_dir {
            let path = dir.join("failures.csv");
            if let Err(error) = std::fs::write(&path, resilience_table(&results).to_csv()) {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("  wrote {}", path.display());
        }
    }

    let mut unverified_incumbents = 0usize;
    if options.churn {
        let mut config = ChurnRunConfig::new();
        config.problem_size = 2000;
        if options.quick {
            config.deltas = 400;
            config.problem_size = 400;
        }
        if let Some(size_max) = options.size_max {
            config.problem_size = size_max;
        }
        if options.budget_ms.is_some() {
            // Overriding the per-apply deadline is how the flight
            // recorder's anomaly path is exercised on demand: a
            // deliberately impossible budget forces misses, rollbacks
            // and (under `RP_OBS=counters` + `RP_FLIGHT_DUMP`) dumps.
            config.budget_ms = options.budget_ms;
        }
        let budget = config
            .budget_ms
            .map(|ms| format!("{ms} ms"))
            .unwrap_or_else(|| "unlimited".to_string());
        eprintln!(
            "running churn sweep ({} deltas per policy, s = {}, budget = {}, seed = {}) ...",
            config.deltas, config.problem_size, budget, config.seed
        );
        let started = std::time::Instant::now();
        let results = run_churn(&config);
        eprintln!("  done in {:.1}s", started.elapsed().as_secs_f64());

        println!("{}", churn_markdown(&results));

        unverified_incumbents = results.total_unverified();
        if let Some(dir) = &options.out_dir {
            let path = dir.join("churn.csv");
            if let Err(error) = std::fs::write(&path, churn_table(&results).to_csv()) {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("  wrote {}", path.display());
        }
    }

    export_observability(&options);

    if unverified_incumbents > 0 {
        eprintln!("{unverified_incumbents} online incumbent(s) failed their machine check");
        std::process::exit(1);
    }
    if unverified_repairs > 0 {
        eprintln!("{unverified_repairs} repair outcome(s) failed their machine check");
        std::process::exit(1);
    }
    if shape_failures > 0 {
        eprintln!("{shape_failures} shape expectation(s) violated");
        std::process::exit(1);
    }
}
