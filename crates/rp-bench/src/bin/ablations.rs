//! Runs the ablation studies (policy families, bound tightness, tree
//! shapes) and prints their tables as markdown.
//!
//! ```text
//! cargo run --release -p rp-bench --bin ablations            # default (reduced) configuration
//! cargo run --release -p rp-bench --bin ablations -- --full  # the figure-sized sweep
//! ```

use rp_experiments::ablations::{
    bound_tightness_ablation, policy_family_ablation, tree_shape_ablation,
};
use rp_experiments::runner::{run_sweep, ExperimentConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    let base = if full {
        ExperimentConfig::homogeneous()
    } else {
        ExperimentConfig {
            trees_per_lambda: 10,
            size_range: (15, 60),
            ..ExperimentConfig::homogeneous()
        }
    };

    eprintln!(
        "running ablations ({} trees per λ, sizes {}..={}) ...",
        base.trees_per_lambda, base.size_range.0, base.size_range.1
    );

    println!("## Policy-family ablation (relative cost of the best heuristic per family)\n");
    let results = run_sweep(&base);
    println!("{}", policy_family_ablation(&results).to_markdown());

    println!("## Lower-bound tightness (rational / mixed, same instances)\n");
    let bound_config = ExperimentConfig {
        size_range: (15, 40),
        ..base.clone()
    };
    let bound_trees = if full { 10 } else { 4 };
    println!(
        "{}",
        bound_tightness_ablation(&bound_config, bound_trees).to_markdown()
    );

    println!("## Tree-shape ablation (λ = 0.5)\n");
    println!("{}", tree_shape_ablation(&base, 0.5).to_markdown());
}
