//! Quick-mode performance baseline: times the hot paths the sweep
//! exercises and writes a machine-readable `BENCH_baseline.json` so the
//! perf trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p rp-bench --bin baseline -- [OUTPUT.json] [--compare OLD.json]
//! cargo run --release -p rp-bench --bin baseline -- --smoke-revised
//! cargo run --release -p rp-bench --bin baseline -- --smoke-heuristics
//! cargo run --release -p rp-bench --bin baseline -- --smoke-failures
//! cargo run --release -p rp-bench --bin baseline -- --smoke-online
//! cargo run --release -p rp-bench --bin baseline -- --smoke-obs
//! cargo run --release -p rp-bench --bin baseline -- --smoke-pricing
//! cargo run --release -p rp-bench --bin baseline -- --check-budget [perf-budget.toml]
//! cargo run --release -p rp-bench --bin baseline -- [--obs-out OUT.json] --obs-only
//! cargo run --release -p rp-bench --bin baseline -- [--sparse-out OUT.json] --sparse-only
//! cargo run --release -p rp-bench --bin baseline -- [--heuristics-out OUT.json] --heuristics-only
//! cargo run --release -p rp-bench --bin baseline -- [--failures-out OUT.json] --failures-only
//! cargo run --release -p rp-bench --bin baseline -- [--online-out OUT.json] --online-only
//! cargo run --release -p rp-bench --bin baseline -- [--pricing-out OUT.json] --pricing-only
//! ```
//!
//! Metrics (all medians over several samples):
//!
//! * `heuristic/<name>/<platform>/<size>` — ns per full heuristic run;
//! * `full_sweep/<platform>/<size>` — ns for MixedBest (all eight
//!   heuristics on one instance), the paper's per-tree unit of work;
//! * `allocs/...` — heap allocations per run (counted by a wrapping
//!   global allocator; warm caches, so steady-state numbers);
//!   `allocs/full_sweep_pooled/*` measures the pooled
//!   `MixedBest::full_sweep` driver the parallel sweep pins per worker;
//! * `ancestors_pass/<size>` — ns to walk every client's ancestor path;
//! * `ancestor_check_pass/<size>` — ns for all-pairs `node_is_ancestor_or_self`;
//! * `lp_rational_bound/<size>` — ns for the Section 7.1 LP lower bound
//!   (on the default — revised — engine);
//! * `milp_mixed_bound/<size>` — ns for the capped mixed bound;
//! * `sweep_smoke_ms` — wall-clock ms for the smoke-test sweep;
//! * `sweep_trees_per_sec` — sweep throughput derived from it.
//!
//! The run **also** writes `BENCH_revised.json`: dense-tableau vs
//! revised-simplex timings per LP-bound size with the speedup ratio,
//! plus the paper-scale `s = 400` revised-engine bound time that the
//! dense engine cannot reach in reasonable time — and
//! `BENCH_sparse.json`: the sparse-LU / Forrest–Tomlin / devex
//! trajectory (factor nnz scaling, FTRAN/BTRAN and refactorisation
//! timings, devex vs Dantzig iteration counts, warm sibling re-solves,
//! and the `s = 2000` multi-thousand-row scenario; see
//! [`write_sparse_report`]).
//!
//! `--smoke-revised` is the CI mode: it solves one `s = 400`
//! paper-scale LP bound with the revised engine, prints the timing and
//! exits non-zero if the solve did not produce a bound.
//! `--smoke-failures` is its fault-tolerance sibling: one seeded node
//! failure and one seeded link failure on a paper-scale placement, each
//! repaired within `RP_SMOKE_FAIL_MS` with a machine-checked outcome.
//! `--smoke-online` drives the full 2000-delta churn sweep through the
//! online `PlacementEngine` per policy at
//! `s = 400` and requires every incumbent to pass its machine check
//! within the `RP_SMOKE_ONLINE_MS` wall budget (see [`smoke_online`]).
//! The full run also writes `BENCH_failures.json`: the 200-trial
//! resilience sweep (survival / degradation / repair latency per
//! heuristic; see [`write_failures_report`]) — `BENCH_online.json`: the
//! `s = 2000` churn trajectory (re-placements/sec, apply-latency
//! percentiles and rung counters per policy; see
//! [`write_online_report`]) — and `BENCH_obs.json`:
//! the full metrics-registry snapshot of an instrumented representative
//! workload (see [`write_obs_report`]) — and `BENCH_pricing.json`: the
//! per-rule pricing trajectory (cold and warm ms / iterations / bound
//! flips at `s = 400` and `s = 2000`; see [`write_pricing_report`]).
//! `--smoke-obs` gates the telemetry layer itself, `--smoke-pricing`
//! gates the pricing machinery (dense-oracle agreement across rules +
//! the `s = 2000` bound under `RP_SMOKE_PRICE_MS`), and
//! `--check-budget` enforces the pinned ceilings of `perf-budget.toml`
//! (see [`smoke_obs`] / [`smoke_pricing`] / [`check_budget`]).
//!
//! With `--compare OLD.json` the output also contains a `speedup`
//! section: `old / new` per metric shared with the old file.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rp_bench::{bench_instance, MICRO_SIZES};
use rp_core::heuristics::HeuristicState;
use rp_core::ilp::{lower_bound, lower_bound_with, BoundKind, IlpOptions};
use rp_core::{Heuristic, MixedBest};
use rp_experiments::runner::{run_sweep, ExperimentConfig};
use rp_lp::{BranchBoundOptions, LpEngine};
use rp_workloads::platform::{paper_scale_instance, PlatformKind};

/// Counts every heap allocation so the "allocation-free inner loop"
/// claim is verified by measurement, not by inspection.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Median ns/op of `f`, sampled adaptively within a small time budget.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm up and estimate.
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < Duration::from_millis(20) {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    let batch = ((8_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Allocations per call of `f` in the steady state (after warm-up).
fn allocs_per_call<F: FnMut()>(mut f: F) -> f64 {
    for _ in 0..3 {
        f(); // warm any lazily grown buffers
    }
    const CALLS: u64 = 10;
    let before = allocations();
    for _ in 0..CALLS {
        f();
    }
    (allocations() - before) as f64 / CALLS as f64
}

/// Times a **single** invocation of `f` (no sampling, no median —
/// used for the long paper-scale solves), returning (ns, result).
fn time_once<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_nanos() as f64, result)
}

/// The CI smoke check: one paper-scale (`s = 400`) LP lower bound on
/// the revised engine. Solves the relaxation directly and asserts
/// `Status::Optimal` — going through `lower_bound_with` would mask an
/// iteration-limited or failed solve as the always-valid bound `0.0`.
/// The sparse-LU engine must also stay within the `RP_SMOKE_MS` wall
/// budget (default 25 ms — generous against the ~5 ms it takes on a
/// quiet machine, tight against the ~250 ms the dense tableau needs)
/// and agree with the dense oracle's objective.
fn smoke_revised() {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{solve_lp, solve_lp_revised, Status};

    let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    let (ns, solution) = time_once(|| solve_lp_revised(&formulation.model));
    if solution.status != Status::Optimal || !solution.objective.is_finite() {
        eprintln!(
            "s=400 revised lp_rational_bound FAILED: status {}, objective {}",
            solution.status, solution.objective
        );
        std::process::exit(1);
    }
    let budget_ms: f64 = std::env::var("RP_SMOKE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    if ns / 1e6 > budget_ms {
        eprintln!(
            "s=400 revised lp_rational_bound REGRESSED: {:.1} ms exceeds the {budget_ms} ms budget",
            ns / 1e6
        );
        std::process::exit(1);
    }
    let dense = solve_lp(&formulation.model);
    if dense.status != Status::Optimal
        || (dense.objective - solution.objective).abs() > 1e-4 * solution.objective.abs().max(1.0)
    {
        eprintln!(
            "s=400 engines disagree: revised {} vs dense oracle {} ({})",
            solution.objective, dense.objective, dense.status
        );
        std::process::exit(1);
    }
    println!(
        "s=400 revised lp_rational_bound = {:.3} in {:.1} ms (dense oracle agrees: {:.3})",
        solution.objective,
        ns / 1e6,
        dense.objective
    );
}

/// The ill-scaled bandwidth CI smoke: two checks back to back.
///
/// 1. A small (`s = 120`) **ill-scaled bandwidth-constrained** LP —
///    wide-range capacities spanning five decades plus per-link
///    bandwidth rows — must solve on the revised engine with the
///    equilibration pass forced on (its ~2e5 spread sits below the
///    `Auto` threshold, so the smoke pins the scaled path explicitly)
///    *and* agree with the dense-tableau oracle's objective.
/// 2. The `s = 2000`-class bandwidth instance (multi-thousand rows once
///    the flow recurrences materialise) must solve with the revised
///    engine inside the `RP_SMOKE_BW_MS` wall budget; the dense oracle
///    is structurally unable to reach this scale, which is the point of
///    the sparse core.
fn smoke_bandwidth() {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{
        solve_lp, solve_lp_revised_reusing, RevisedWorkspace, Scaling, SimplexOptions, Status,
    };
    use rp_workloads::scenarios::{bandwidth_scale_instance, ill_scaled_bandwidth_instance};

    let mut workspace = RevisedWorkspace::new();
    let options = SimplexOptions::default();

    // --- Dense-oracle agreement on the small ill-scaled instance, with
    // the equilibration pass forced on so the scaled code path stays
    // exercised now that `Auto` leaves ~2e5 spreads alone. ---
    let scaled_options = SimplexOptions {
        scaling: Scaling::Geometric,
        ..SimplexOptions::default()
    };
    let small = ill_scaled_bandwidth_instance(120, 0.4, 31);
    let formulation = build_model(&small, Policy::Multiple, Integrality::RationalBound);
    let revised = solve_lp_revised_reusing(&formulation.model, &scaled_options, &mut workspace);
    if revised.status != Status::Optimal || !revised.objective.is_finite() {
        eprintln!(
            "s=120 ill-scaled bandwidth bound FAILED: status {}, objective {}",
            revised.status, revised.objective
        );
        std::process::exit(1);
    }
    let spread = workspace.scaling_spread();
    if spread.is_none() {
        eprintln!("s=120 ill-scaled bandwidth bound did not trigger the equilibration pass");
        std::process::exit(1);
    }
    let dense = solve_lp(&formulation.model);
    if dense.status != Status::Optimal
        || (dense.objective - revised.objective).abs() > 1e-4 * revised.objective.abs().max(1.0)
    {
        eprintln!(
            "s=120 ill-scaled engines disagree: revised {} vs dense oracle {} ({})",
            revised.objective, dense.objective, dense.status
        );
        std::process::exit(1);
    }
    let (before, after) = spread.unwrap();
    println!(
        "s=120 ill-scaled bandwidth bound = {:.3} (dense oracle agrees: {:.3}; entry spread {:.1e} -> {:.1e})",
        revised.objective, dense.objective, before, after
    );

    // --- The s = 2000 class within the wall budget. ---
    let problem = bandwidth_scale_instance(0.2, 31);
    workspace.invalidate();
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    let (ns, solution) =
        time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
    if solution.status != Status::Optimal || !solution.objective.is_finite() {
        eprintln!(
            "s=2000 bandwidth bound FAILED: status {}, objective {}",
            solution.status, solution.objective
        );
        std::process::exit(1);
    }
    let budget_ms: f64 = std::env::var("RP_SMOKE_BW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000.0);
    if ns / 1e6 > budget_ms {
        eprintln!(
            "s=2000 bandwidth bound REGRESSED: {:.1} ms exceeds the {budget_ms} ms budget",
            ns / 1e6
        );
        std::process::exit(1);
    }
    let stats = workspace.last_stats();
    println!(
        "s=2000 bandwidth bound = {:.3} in {:.1} ms ({} rows x {} cols, {} iterations)",
        solution.objective,
        ns / 1e6,
        formulation.model.num_constraints(),
        formulation.model.num_vars(),
        stats.iterations()
    );
    println!(
        "  pivots: phase1 {} phase2 {} dual {} | flips: primal {} dual {} | queue: hits {} rebuilds {} | devex resets {}",
        stats.phase1_pivots,
        stats.phase2_pivots(),
        stats.dual_pivots,
        stats.bound_flips,
        stats.dual_bound_flips,
        stats.queue_hits,
        stats.queue_rebuilds,
        stats.devex_resets
    );
}

/// The pricing-machinery CI smoke (PR 9): two checks back to back.
///
/// 1. Every pricing pair — candidate-queue partial, devex and Dantzig
///    on the primal side, dual devex and most-violated-row on the dual
///    side — must reach `Status::Optimal` on the paper-scale
///    (`s = 400`) bound and agree with the dense-tableau oracle's
///    objective. A pricing rule only reorders pivots; a rule that
///    changes the answer is broken.
/// 2. The `s = 2000` bandwidth bound under the **default** rules
///    (partial pricing + dual devex + the bound-flipping ratio test)
///    must land inside the pinned `RP_SMOKE_PRICE_MS` wall budget
///    (default 500 ms — generous against the ~45 ms on a quiet
///    machine, far below the ~700 ms the pre-PR-9 engine needed).
fn smoke_pricing() {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{
        solve_lp, solve_lp_revised_reusing, DualPricing, Pricing, RevisedWorkspace, SimplexOptions,
        Status,
    };
    use rp_workloads::scenarios::{bandwidth_scale_instance, feasible_bandwidth_instance};

    let mut workspace = RevisedWorkspace::new();

    // --- Every rule pair agrees with the dense oracle at s = 400. ---
    let problem = feasible_bandwidth_instance(400, 0.4, 31);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    let dense = solve_lp(&formulation.model);
    if dense.status != Status::Optimal {
        eprintln!("s=400 dense oracle FAILED: status {}", dense.status);
        std::process::exit(1);
    }
    for (pricing, dual_pricing, label) in [
        (Pricing::Partial, DualPricing::Devex, "partial + dual devex"),
        (Pricing::Devex, DualPricing::Devex, "devex + dual devex"),
        (
            Pricing::Dantzig,
            DualPricing::MostViolated,
            "dantzig + most-violated",
        ),
    ] {
        let options = SimplexOptions {
            pricing,
            dual_pricing,
            ..SimplexOptions::default()
        };
        workspace.invalidate();
        let solution = solve_lp_revised_reusing(&formulation.model, &options, &mut workspace);
        if solution.status != Status::Optimal
            || (solution.objective - dense.objective).abs() > 1e-4 * dense.objective.abs().max(1.0)
        {
            eprintln!(
                "s=400 pricing rule `{label}` disagrees: {} ({}) vs dense oracle {}",
                solution.objective, solution.status, dense.objective
            );
            std::process::exit(1);
        }
    }
    println!(
        "s=400 pricing rules all agree with the dense oracle ({:.3})",
        dense.objective
    );

    // --- The s = 2000 bound inside the pricing-wall budget. ---
    let problem = bandwidth_scale_instance(0.2, 31);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    workspace.invalidate();
    let options = SimplexOptions::default();
    let (ns, solution) =
        time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
    if solution.status != Status::Optimal || !solution.objective.is_finite() {
        eprintln!(
            "s=2000 pricing smoke FAILED: status {}, objective {}",
            solution.status, solution.objective
        );
        std::process::exit(1);
    }
    let budget_ms: f64 = std::env::var("RP_SMOKE_PRICE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    if ns / 1e6 > budget_ms {
        eprintln!(
            "s=2000 pricing smoke REGRESSED: {:.1} ms exceeds the {budget_ms} ms budget",
            ns / 1e6
        );
        std::process::exit(1);
    }
    let stats = workspace.last_stats();
    println!(
        "s=2000 bound = {:.3} in {:.1} ms under the default rules \
         ({} dual pivots, {} dual bound flips, queue {} hits / {} rebuilds, {} devex resets)",
        solution.objective,
        ns / 1e6,
        stats.dual_pivots,
        stats.dual_bound_flips,
        stats.queue_hits,
        stats.queue_rebuilds,
        stats.devex_resets
    );
}

/// The LP-guided heuristics CI smoke: one `s = 120`
/// bandwidth-constrained instance and one 2-object instance must round
/// to a **feasible** placement within a `RP_SMOKE_GAP_PCT` (default
/// 25%) cost gap, inside the `RP_SMOKE_HEUR_MS` wall budget (default
/// 2000 ms, covering the LP solve *and* the rounding/repair pipeline).
///
/// The yardstick differs per family, deliberately:
///
/// * **bandwidth (single-object)** — gap against the rational LP
///   bound, which is tight on these formulations;
/// * **2-object** — gap against the **exact multi-object ILP optimum**
///   (solved in-process on a replica-counting 2-object instance). The
///   rational bound is *not* a usable yardstick for multi-object
///   families: `K` objects sharing a node pay fractional per-object
///   replicas in the relaxation, so even the exact optimum sits far
///   above it (the golden `multi_object_coupling` instance pins
///   exact = 7 vs LP = 3.4 — a 106% gap at the optimum).
fn smoke_heuristics() {
    use rp_core::heuristics::lp_guided::{lp_guided_multi_with, lp_guided_with};
    use rp_core::multi::solve_multi_ilp_with;
    use rp_core::Policy;
    use rp_workloads::scenarios::{feasible_bandwidth_instance, multi_object_counting_instance};

    let gap_budget_pct: f64 = std::env::var("RP_SMOKE_GAP_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let ms_budget: f64 = std::env::var("RP_SMOKE_HEUR_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);
    let options = IlpOptions::with_engine(LpEngine::Revised);

    // --- s = 120 bandwidth-constrained rounding. ---
    let problem = feasible_bandwidth_instance(120, 0.4, 31);
    let bound = lower_bound(&problem, BoundKind::Rational).unwrap_or(0.0);
    let (ns, placement) = time_once(|| lp_guided_with(&problem, &options));
    let Some(placement) = placement else {
        eprintln!("s=120 bandwidth LP-guided rounding FAILED to place");
        std::process::exit(1);
    };
    if !placement.is_valid(&problem, Policy::Multiple) {
        eprintln!("s=120 bandwidth LP-guided placement is INVALID");
        std::process::exit(1);
    }
    let gap_pct = 100.0 * (placement.cost(&problem) as f64 / bound.max(1e-9) - 1.0);
    if gap_pct > gap_budget_pct {
        eprintln!(
            "s=120 bandwidth LP-guided gap REGRESSED: {gap_pct:.1}% exceeds {gap_budget_pct}%"
        );
        std::process::exit(1);
    }
    if ns / 1e6 > ms_budget {
        eprintln!(
            "s=120 bandwidth LP-guided rounding REGRESSED: {:.1} ms exceeds {ms_budget} ms",
            ns / 1e6
        );
        std::process::exit(1);
    }
    println!(
        "s=120 bandwidth LP-guided cost = {} (bound {bound:.1}, gap {gap_pct:.1}%) in {:.1} ms",
        placement.cost(&problem),
        ns / 1e6
    );

    // --- 2-object rounding vs the exact multi-object optimum. ---
    let problem = multi_object_counting_instance(40, 2, 0.4, 11);
    let mut exact_options = options;
    exact_options.branch_bound.max_nodes = 500_000;
    let exact = solve_multi_ilp_with(&problem, &exact_options)
        .map(|p| p.cost(&problem))
        .unwrap_or_else(|| {
            eprintln!("2-object exact reference solve FAILED");
            std::process::exit(1);
        });
    let (ns, placement) = time_once(|| lp_guided_multi_with(&problem, &options));
    let Some(placement) = placement else {
        eprintln!("2-object LP-guided rounding FAILED to place");
        std::process::exit(1);
    };
    if let Err(error) = placement.validate(&problem, Policy::Multiple) {
        eprintln!("2-object LP-guided placement is INVALID: {error}");
        std::process::exit(1);
    }
    let gap_pct = 100.0 * (placement.cost(&problem) as f64 / exact as f64 - 1.0);
    if gap_pct > gap_budget_pct {
        eprintln!("2-object LP-guided gap REGRESSED: {gap_pct:.1}% over the exact optimum {exact} exceeds {gap_budget_pct}%");
        std::process::exit(1);
    }
    if ns / 1e6 > ms_budget {
        eprintln!(
            "2-object LP-guided rounding REGRESSED: {:.1} ms exceeds {ms_budget} ms",
            ns / 1e6
        );
        std::process::exit(1);
    }
    println!(
        "2-object LP-guided cost = {} (exact {exact}, gap {gap_pct:.1}%) in {:.1} ms",
        placement.cost(&problem),
        ns / 1e6
    );
}

/// The fault-tolerance CI smoke: one paper-scale (`s = 400`) instance,
/// one seeded node failure and one seeded link failure, each injected
/// into the MixedBest placement and repaired within the
/// `RP_SMOKE_FAIL_MS` wall budget (default 250 ms per repair). Either
/// outcome — full recovery or a degraded report — must pass its
/// machine check; a check failure or a budget overrun exits non-zero.
fn smoke_failures() {
    use rp_core::{inject_and_repair, Policy};
    use rp_workloads::failures::{sample_link_failure, sample_node_failure};

    let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
    let Some(placement) = Heuristic::MixedBest.run(&problem) else {
        eprintln!("s=400 smoke-failures: MixedBest FAILED on the healthy instance");
        std::process::exit(1);
    };
    let budget_ms: f64 = std::env::var("RP_SMOKE_FAIL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0);
    for (label, failure) in [
        ("node", sample_node_failure(&problem, 31)),
        ("link", sample_link_failure(&problem, 31)),
    ] {
        let (ns, (platform, outcome)) =
            time_once(|| inject_and_repair(&problem, &placement, Policy::Multiple, &[failure]));
        if !outcome.verify(&platform, Policy::Multiple) {
            eprintln!("s=400 {label}-failure repair FAILED its machine check ({failure})");
            std::process::exit(1);
        }
        if ns / 1e6 > budget_ms {
            eprintln!(
                "s=400 {label}-failure repair REGRESSED: {:.2} ms exceeds the {budget_ms} ms budget",
                ns / 1e6
            );
            std::process::exit(1);
        }
        println!(
            "s=400 {label} failure ({failure}) repaired in {:.2} ms: {} ({:.1}% of requests served)",
            ns / 1e6,
            if outcome.is_full() {
                "full recovery"
            } else {
                "degraded"
            },
            100.0 * outcome.served_fraction()
        );
    }
}

/// The online-engine CI smoke: the default churn sweep — 2000 seeded
/// mixed deltas per policy on a paper-scale (`s = 400`) instance, each
/// apply under a 50 ms budget with the incumbent machine-verified
/// after every one (`Paranoia::Full`). Exits non-zero on any
/// unverified incumbent, any rollback leak (the outcome mix, the rung
/// counters and the final generation must all account for exactly the
/// absorbed deltas), or a total wall time over `RP_SMOKE_ONLINE_MS`
/// (default 120 000 ms across all three policies).
fn smoke_online() {
    use rp_experiments::churn::{run_churn, ChurnRunConfig};

    let config = ChurnRunConfig::new();
    let budget_ms: f64 = std::env::var("RP_SMOKE_ONLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000.0);
    let (ns, results) = time_once(|| run_churn(&config));
    let unverified = results.total_unverified();
    if unverified > 0 {
        eprintln!("s=400 smoke-online: {unverified} incumbent(s) FAILED their machine check");
        std::process::exit(1);
    }
    for outcome in &results.per_policy {
        let absorbed = (outcome.applied + outcome.degraded) as u64;
        let accounted = outcome.applied + outcome.degraded + outcome.deferred == config.deltas
            && outcome.rungs.total() == absorbed
            && outcome.final_generation == absorbed;
        if !accounted {
            eprintln!(
                "s=400 smoke-online: {} leaked a rollback ({} applied + {} degraded + {} \
                 deferred vs {} deltas; rungs {}, generation {})",
                outcome.policy,
                outcome.applied,
                outcome.degraded,
                outcome.deferred,
                config.deltas,
                outcome.rungs.total(),
                outcome.final_generation
            );
            std::process::exit(1);
        }
        println!(
            "s={} {}: {} deltas absorbed ({} applied, {} degraded, {} deferred) — \
             {:.0} re-placements/s, p99 {:.3} ms, rungs {}/{}/{}/{} \
             (surgical/lp-repair/rerun/degraded), all incumbents verified",
            config.problem_size,
            outcome.policy,
            absorbed,
            outcome.applied,
            outcome.degraded,
            outcome.deferred,
            outcome.replacements_per_sec,
            outcome.p99_ms,
            outcome.rungs.surgical,
            outcome.rungs.lp_repair,
            outcome.rungs.rerun,
            outcome.rungs.degraded,
        );
    }
    if ns / 1e6 > budget_ms {
        eprintln!(
            "s=400 smoke-online REGRESSED: {:.0} ms exceeds the {budget_ms} ms wall budget",
            ns / 1e6
        );
        std::process::exit(1);
    }
}

/// Solves the model cold `n` times on one workspace (invalidated
/// between solves) and returns the median wall time in ms, exiting
/// non-zero if any solve fails.
fn median_cold_solve_ms(model: &rp_lp::Model, n: usize, what: &str) -> f64 {
    use rp_lp::{solve_lp_revised_reusing, RevisedWorkspace, SimplexOptions, Status};

    let mut workspace = RevisedWorkspace::new();
    let options = SimplexOptions::default();
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        workspace.invalidate();
        let (ns, solution) =
            time_once(|| solve_lp_revised_reusing(model, &options, &mut workspace));
        if solution.status != Status::Optimal {
            eprintln!("{what} FAILED: status {}", solution.status);
            std::process::exit(1);
        }
        samples.push(ns / 1e6);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Minimal structural JSON check for the emitted trace/metrics files:
/// braces and brackets balance outside strings, and the document is one
/// object. Not a full parser — enough to catch a truncated or
/// mis-escaped export without pulling in a JSON dependency.
fn json_is_well_formed(text: &str) -> bool {
    let text = text.trim();
    if !text.starts_with('{') || !text.ends_with('}') {
        return false;
    }
    let (mut depth, mut in_string, mut escaped) = (0i64, false, false);
    for c in text.chars() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// The observability CI smoke: four checks back to back.
///
/// 1. **Key counters are live** — one instrumented (`ObsMode::Full`)
///    `s = 400` paper-scale solve must leave the solve counter, the
///    FTRAN counter, the iteration gauge, the solve histogram and a
///    warm-start classification nonzero in the global registry —
///    and its phase-time breakdown must sum to within 20% of the
///    measured solve wall time (the profiler reconciles with reality).
/// 2. **Exports round-trip** — the chrome trace and the metrics JSON
///    written from that run must be structurally well-formed and
///    contain the expected top-level keys.
/// 3. **Disabled means free** — with `ObsMode::Off` the median cold
///    solve must stay within 2% of the pinned pre-instrumentation
///    timing budget (`RP_SMOKE_OBS_MS`, default 25 ms — the same
///    ceiling `--smoke-revised` enforced before the telemetry layer
///    existed), so the mode-gated sites cost nothing when off.
fn smoke_obs() {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{solve_lp_revised_reusing, RevisedWorkspace, SimplexOptions, Status};
    use rp_obs::{Counter, Gauge, HistId};

    let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);

    // --- 1. Instrumented solve: key counters nonzero. ---
    rp_obs::set_mode(rp_obs::ObsMode::Full);
    rp_obs::reset_all();
    rp_obs::clear_trace();
    let mut workspace = RevisedWorkspace::new();
    let options = SimplexOptions::default();
    let (wall_ns, solution) =
        time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
    if solution.status != Status::Optimal {
        eprintln!(
            "s=400 instrumented solve FAILED: status {}",
            solution.status
        );
        std::process::exit(1);
    }
    // The phase profiler's breakdown must reconcile with the measured
    // wall time: phase timers never nest, so the sum can only fall
    // short of the wall clock by untimed glue — more than 20% adrift
    // means a phase lost its timer (or one started double-counting).
    let phases = workspace.last_stats().phases;
    let coverage = phases.total_nanos() as f64 / wall_ns.max(1.0);
    if !(0.8..=1.2).contains(&coverage) {
        eprintln!(
            "smoke-obs FAILED: phase breakdown sums to {:.1}% of the instrumented s=400 \
             solve wall time ({:.2} ms of {:.2} ms); need within 20%",
            100.0 * coverage,
            phases.total_nanos() as f64 / 1e6,
            wall_ns / 1e6,
        );
        std::process::exit(1);
    }
    println!(
        "phase breakdown covers {:.1}% of the instrumented s=400 solve ({:.2} ms)",
        100.0 * coverage,
        wall_ns / 1e6,
    );
    let registry = rp_obs::global();
    let warm_classified = registry.counter(Counter::LpWarmCold)
        + registry.counter(Counter::LpWarmHit)
        + registry.counter(Counter::LpWarmRefactor)
        + registry.counter(Counter::LpWarmModeChangeCold);
    let key_counters = [
        ("lp.solves", registry.counter(Counter::LpSolves)),
        ("lp.ftran.calls", registry.counter(Counter::LpFtranCalls)),
        ("lp.btran.calls", registry.counter(Counter::LpBtranCalls)),
        (
            "lp.iterations (gauge)",
            registry.gauge(Gauge::LpLastIterations),
        ),
        // L's off-diagonal count can legitimately be zero (tree bases
        // factor near-triangularly); U always carries the diagonal.
        (
            "lp.factor.nnz_u (gauge)",
            registry.gauge(Gauge::LpFactorNnzU),
        ),
        (
            "lp.solve_us (hist count)",
            registry.histogram(HistId::LpSolveUs).count(),
        ),
        ("lp.warm.* (classified)", warm_classified),
    ];
    for (name, value) in key_counters {
        if value == 0 {
            eprintln!("smoke-obs FAILED: {name} is zero after an instrumented s=400 solve");
            std::process::exit(1);
        }
    }
    println!(
        "s=400 instrumented solve: {} iterations, {} FTRANs, ftran skip ratio {:.3}",
        registry.gauge(Gauge::LpLastIterations),
        registry.counter(Counter::LpFtranCalls),
        1.0 - registry.counter(Counter::LpFtranInNnz) as f64
            / registry.counter(Counter::LpFtranDim).max(1) as f64,
    );

    // --- 2. Trace and metrics exports parse back. ---
    let trace = rp_obs::chrome_trace_json();
    let metrics = rp_obs::metrics_json();
    for (what, text, key) in [
        ("trace", &trace, "\"traceEvents\""),
        ("metrics", &metrics, "\"counters\""),
    ] {
        if !json_is_well_formed(text) || !text.contains(key) {
            eprintln!("smoke-obs FAILED: emitted {what} JSON is malformed or missing {key}");
            std::process::exit(1);
        }
    }
    if rp_obs::trace_event_count() == 0 {
        eprintln!("smoke-obs FAILED: the instrumented solve produced no trace events");
        std::process::exit(1);
    }
    println!(
        "exports round-trip: {} trace events, {} bytes of metrics JSON",
        rp_obs::trace_event_count(),
        metrics.len()
    );

    // --- 3. Off-mode overhead under the pinned budget. ---
    rp_obs::set_mode(rp_obs::ObsMode::Off);
    let off_ms = median_cold_solve_ms(&formulation.model, 7, "s=400 off-mode solve");
    let pinned_ms: f64 = std::env::var("RP_SMOKE_OBS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let ceiling_ms = pinned_ms * 1.02;
    if off_ms > ceiling_ms {
        eprintln!(
            "smoke-obs FAILED: Off-mode s=400 solve took {off_ms:.2} ms, over the pinned \
             uninstrumented budget {pinned_ms} ms + 2% ({ceiling_ms:.2} ms)"
        );
        std::process::exit(1);
    }
    println!("Off-mode s=400 median {off_ms:.2} ms, within the pinned {pinned_ms} ms + 2% ceiling");
}

/// Writes `BENCH_obs.json`: the metrics-registry snapshot of one fully
/// instrumented representative workload (the smoke sweep plus the
/// bandwidth scenario sweep) — every counter, gauge and histogram in
/// the catalogue, so the telemetry trajectory is tracked across PRs
/// alongside the timing baselines.
fn write_obs_report(path: &str) {
    let json = obs_metrics_snapshot();
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Runs the representative instrumented workload (the smoke sweep plus
/// the bandwidth scenario sweep) and returns the metrics-registry
/// snapshot as JSON — the payload of `BENCH_obs.json` and the "fresh
/// run" side of an obs-diff attribution.
fn obs_metrics_snapshot() -> String {
    use rp_experiments::scenarios::{ScenarioConfig, ScenarioFamily};

    let previous = rp_obs::mode();
    rp_obs::set_mode(rp_obs::ObsMode::Full);
    rp_obs::reset_all();
    rp_obs::clear_trace();
    let sweep = run_sweep(&ExperimentConfig::smoke_test());
    black_box(&sweep);
    let scenario = rp_experiments::scenarios::run_scenario(&ScenarioConfig::smoke_test(
        ScenarioFamily::Bandwidth,
    ));
    black_box(&scenario);
    let json = rp_obs::metrics_json();
    rp_obs::set_mode(previous);
    json
}

/// Parses the `key = value` numeric entries of `perf-budget.toml` into
/// `(section, key, value)` triples (`[section]` headers group the keys;
/// comments explain — only the names matter). Hand-rolled on purpose:
/// the workspace is dependency-free and the format we control is a
/// strict subset of TOML.
fn parse_budget(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((section.clone(), key.trim().to_string(), v));
        }
    }
    out
}

fn budget_value(budget: &[(String, String, f64)], key: &str) -> f64 {
    budget
        .iter()
        .find(|(_, k, _)| k == key)
        .map(|&(_, _, v)| v)
        .unwrap_or_else(|| {
            eprintln!("perf-budget.toml is missing the `{key}` ceiling");
            std::process::exit(1);
        })
}

/// Flattens a JSON document into dotted-path numeric leaves
/// (`counters` → `lp.solves` becomes `counters.lp.solves`). Strings,
/// booleans and nulls are skipped — a diff only ranks numbers. Arrays
/// index their elements (`path.0`, `path.1`, …). Hand-rolled like the
/// other parsers here: the inputs are the workspace's own exports.
/// Returns `None` on malformed input.
fn flatten_json_numbers(text: &str) -> Option<Vec<(String, f64)>> {
    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn string(&mut self) -> Option<String> {
            // Caller guarantees `bytes[pos] == b'"'`.
            self.pos += 1;
            let mut raw = Vec::new();
            loop {
                match self.bytes.get(self.pos)? {
                    b'"' => {
                        self.pos += 1;
                        return Some(String::from_utf8_lossy(&raw).into_owned());
                    }
                    b'\\' => {
                        // Keep the escaped byte verbatim — metric names
                        // never contain escapes, and skipped string
                        // values only need their closing quote found.
                        self.pos += 1;
                        raw.push(*self.bytes.get(self.pos)?);
                        self.pos += 1;
                    }
                    &b => {
                        raw.push(b);
                        self.pos += 1;
                    }
                }
            }
        }

        fn literal(&mut self, word: &str) -> Option<()> {
            let end = self.pos + word.len();
            if self.bytes.get(self.pos..end)? == word.as_bytes() {
                self.pos = end;
                Some(())
            } else {
                None
            }
        }

        fn value(&mut self, path: &str, out: &mut Vec<(String, f64)>) -> Option<()> {
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b'{' => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b'}') {
                        self.pos += 1;
                        return Some(());
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.literal(":")?;
                        let child = if path.is_empty() {
                            key
                        } else {
                            format!("{path}.{key}")
                        };
                        self.value(&child, out)?;
                        self.skip_ws();
                        match self.bytes.get(self.pos)? {
                            b',' => self.pos += 1,
                            b'}' => {
                                self.pos += 1;
                                return Some(());
                            }
                            _ => return None,
                        }
                    }
                }
                b'[' => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b']') {
                        self.pos += 1;
                        return Some(());
                    }
                    let mut index = 0usize;
                    loop {
                        self.value(&format!("{path}.{index}"), out)?;
                        index += 1;
                        self.skip_ws();
                        match self.bytes.get(self.pos)? {
                            b',' => self.pos += 1,
                            b']' => {
                                self.pos += 1;
                                return Some(());
                            }
                            _ => return None,
                        }
                    }
                }
                b'"' => self.string().map(|_| ()),
                b't' => self.literal("true"),
                b'f' => self.literal("false"),
                b'n' => self.literal("null"),
                _ => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|b| {
                        matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                    }) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                    let v: f64 = raw.parse().ok()?;
                    out.push((path.to_string(), v));
                    Some(())
                }
            }
        }
    }

    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    parser.value("", &mut out)?;
    parser.skip_ws();
    (parser.pos == parser.bytes.len()).then_some(out)
}

/// One metric that moved between two snapshots.
struct MetricDelta {
    name: String,
    old: Option<f64>,
    new: Option<f64>,
    /// Relative movement, `|new − old| / max(|old|, 1)` — the ranking
    /// key. Appearing or vanishing metrics score their absolute value.
    score: f64,
}

/// Diffs two flattened snapshots and ranks the movers, biggest first.
/// Metrics with identical values are dropped.
fn diff_ranked(old: &[(String, f64)], new: &[(String, f64)]) -> Vec<MetricDelta> {
    let mut deltas: Vec<MetricDelta> = Vec::new();
    for (name, old_value) in old {
        let new_value = new.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        match new_value {
            Some(v) if v == *old_value => {}
            Some(v) => deltas.push(MetricDelta {
                name: name.clone(),
                old: Some(*old_value),
                new: Some(v),
                score: (v - old_value).abs() / old_value.abs().max(1.0),
            }),
            None => deltas.push(MetricDelta {
                name: name.clone(),
                old: Some(*old_value),
                new: None,
                score: old_value.abs().max(1.0),
            }),
        }
    }
    for (name, new_value) in new {
        if old.iter().all(|(n, _)| n != name) {
            deltas.push(MetricDelta {
                name: name.clone(),
                old: None,
                new: Some(*new_value),
                score: new_value.abs().max(1.0),
            });
        }
    }
    deltas.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.name.cmp(&b.name)));
    deltas
}

/// Renders an obs-diff attribution report: the top `top` movers between
/// two metrics-JSON snapshots, one per line, biggest relative move
/// first. This is what a `--check-budget` breach prints so the failure
/// names its culprit.
fn obs_diff_report(old_text: &str, new_text: &str, top: usize) -> Result<String, String> {
    let old = flatten_json_numbers(old_text).ok_or("old snapshot is not valid JSON")?;
    let new = flatten_json_numbers(new_text).ok_or("new snapshot is not valid JSON")?;
    let deltas = diff_ranked(&old, &new);
    let mut out = String::new();
    out.push_str(&format!(
        "obs-diff: {} of {} metrics moved (top {} below)\n",
        deltas.len(),
        old.len().max(new.len()),
        top.min(deltas.len())
    ));
    for delta in deltas.iter().take(top) {
        let line = match (delta.old, delta.new) {
            (Some(o), Some(n)) => {
                // Same denominator as the ranking score, so a counter
                // rising from zero reads `+4900.0%`, not `+inf%`.
                let pct = 100.0 * (n - o) / o.abs().max(1.0);
                format!("  {}: {o} -> {n} ({pct:+.1}%)\n", delta.name)
            }
            (None, Some(n)) => format!("  {}: (new) -> {n}\n", delta.name),
            (Some(o), None) => format!("  {}: {o} -> (gone)\n", delta.name),
            (None, None) => continue,
        };
        out.push_str(&line);
    }
    if deltas.is_empty() {
        out.push_str("  (snapshots are numerically identical)\n");
    }
    Ok(out)
}

/// The `obs-diff` CLI mode: compares `old_path` against `new_path`, or
/// — when `new_path` is absent — against a fresh run of the
/// representative instrumented workload.
fn obs_diff(old_path: &str, new_path: Option<&str>) {
    let old_text = std::fs::read_to_string(old_path).unwrap_or_else(|e| {
        eprintln!("cannot read {old_path}: {e}");
        std::process::exit(1);
    });
    let new_text = match new_path {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            eprintln!("(no second snapshot given: diffing {old_path} against a fresh run)");
            obs_metrics_snapshot()
        }
    };
    match obs_diff_report(&old_text, &new_text, 25) {
        Ok(report) => print!("{report}"),
        Err(error) => {
            eprintln!("obs-diff FAILED: {error}");
            std::process::exit(1);
        }
    }
}

/// The perf-regression gate (CI): measures the ceilings pinned in
/// `perf-budget.toml` and fails the build on any breach.
///
/// * `s400_bound_ms` — median cold `s = 400` rational-bound solve;
/// * `s2000_bound_ms` / `s2000_iterations_max` — the multi-thousand-row
///   bandwidth bound's wall time and simplex iteration count;
/// * `warm_hit_rate_min` — sibling re-solves (same matrix, shifted
///   right-hand sides) must ride the warm path, not fall back cold;
/// * `hardened_dense_fallbacks_max` — a healthy instance must be
///   answered by the checked revised rung, never the dense oracle;
/// * `obs_phase_coverage_min` — the phase profiler's per-phase wall
///   times must account for most of an instrumented solve.
///
/// `section` restricts the run to one `[section]` of the budget file
/// (`lp` / `warm` / `hardened` / `obs`) — re-measuring one breached
/// ceiling no longer pays for every other measurement.
///
/// On any breach the gate names the culprit before exiting non-zero:
/// it re-runs the representative instrumented workload, diffs the
/// fresh counters against the checked-in `BENCH_obs.json`, prints the
/// top movers, and leaves `obs-breach.metrics.json`,
/// `obs-breach.diff.txt` and `obs-breach.flight.jsonl` behind for CI
/// to upload.
fn check_budget(budget_path: &str, section: Option<&str>) {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{
        solve_lp_hardened, solve_lp_revised_reusing, LpWorkspace, RevisedWorkspace, SimplexOptions,
        Status,
    };
    use rp_obs::Counter;
    use rp_workloads::scenarios::{bandwidth_scale_instance, feasible_bandwidth_instance};

    const SECTIONS: [&str; 4] = ["lp", "warm", "hardened", "obs"];
    if let Some(name) = section {
        if !SECTIONS.contains(&name) {
            eprintln!(
                "unknown budget section `{name}` (expected one of: {})",
                SECTIONS.join(", ")
            );
            std::process::exit(1);
        }
        println!("checking only the [{name}] section of {budget_path}");
    }
    let run = |name: &str| section.is_none_or(|s| s == name);

    let text = std::fs::read_to_string(budget_path).unwrap_or_else(|e| {
        eprintln!("cannot read {budget_path}: {e}");
        std::process::exit(1);
    });
    let budget = parse_budget(&text);
    rp_obs::set_mode(rp_obs::ObsMode::Counters);
    rp_obs::reset_all();
    let options = SimplexOptions::default();
    let mut failures = 0usize;
    let mut check = |name: &str, value: f64, ceiling: f64, higher_is_better: bool| {
        let ok = if higher_is_better {
            value >= ceiling
        } else {
            value <= ceiling
        };
        let verdict = if ok { "ok" } else { "BREACH" };
        let bound = if higher_is_better { "floor" } else { "ceiling" };
        println!("{verdict:>7}  {name} = {value:.2} ({bound} {ceiling})");
        if !ok {
            failures += 1;
        }
    };

    if run("lp") {
        // --- s = 400 paper-scale bound wall time. ---
        let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let ms = median_cold_solve_ms(&formulation.model, 5, "s=400 budget solve");
        check(
            "s400_bound_ms",
            ms,
            budget_value(&budget, "s400_bound_ms"),
            false,
        );

        // --- s = 2000 bandwidth bound: wall time and iterations. ---
        let problem = bandwidth_scale_instance(0.2, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut workspace = RevisedWorkspace::new();
        let (ns, solution) =
            time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
        if solution.status != Status::Optimal {
            eprintln!("s=2000 budget solve FAILED: status {}", solution.status);
            std::process::exit(1);
        }
        check(
            "s2000_bound_ms",
            ns / 1e6,
            budget_value(&budget, "s2000_bound_ms"),
            false,
        );
        check(
            "s2000_iterations_max",
            workspace.last_stats().iterations() as f64,
            budget_value(&budget, "s2000_iterations_max"),
            false,
        );
    }

    if run("warm") {
        // --- Warm-start hit rate over sibling re-solves. ---
        rp_obs::reset_all();
        let problem = feasible_bandwidth_instance(120, 0.4, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut model = formulation.model;
        let mut workspace = RevisedWorkspace::new();
        solve_lp_revised_reusing(&model, &options, &mut workspace);
        let constraints: Vec<_> = model.constraint_ids().collect();
        for step in 1..=9 {
            // Perturb one right-hand side per sibling: the matrix — and
            // so the warm path's validity check — stays identical.
            let id = constraints[step % constraints.len()];
            let rhs = model.constraint(id).rhs;
            model.set_rhs(id, rhs + 1.0);
            solve_lp_revised_reusing(&model, &options, &mut workspace);
        }
        check(
            "warm_hit_rate_min",
            rp_obs::global().warm_start_rate(),
            budget_value(&budget, "warm_hit_rate_min"),
            true,
        );
    }

    if run("hardened") {
        // --- Hardened ladder on a healthy instance. ---
        rp_obs::reset_all();
        let problem = feasible_bandwidth_instance(120, 0.4, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut engine_workspace = LpWorkspace::default();
        match solve_lp_hardened(&formulation.model, &options, &mut engine_workspace) {
            Ok(hardened) => {
                println!(
                    "         (healthy s=120 answered by the {} rung)",
                    hardened.rung
                );
            }
            Err(error) => {
                eprintln!("hardened budget solve FAILED: {error}");
                std::process::exit(1);
            }
        }
        let registry = rp_obs::global();
        check(
            "hardened_dense_fallbacks_max",
            (registry.counter(Counter::LpHardenedDenseFallback)
                + registry.counter(Counter::LpHardenedError)) as f64,
            budget_value(&budget, "hardened_dense_fallbacks_max"),
            false,
        );
    }

    if run("obs") {
        // --- Phase-profiler coverage on the s = 2000 bandwidth bound:
        // the per-phase wall times must account for most of the solve,
        // or the attribution (and every obs-diff built on it) is
        // watching a minority of the work. ---
        rp_obs::reset_all();
        let problem = bandwidth_scale_instance(0.2, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let mut workspace = RevisedWorkspace::new();
        let (ns, solution) =
            time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
        if solution.status != Status::Optimal {
            eprintln!(
                "s=2000 obs-coverage solve FAILED: status {}",
                solution.status
            );
            std::process::exit(1);
        }
        let phases = workspace.last_stats().phases;
        check(
            "obs_phase_coverage_min",
            phases.total_nanos() as f64 / ns.max(1.0),
            budget_value(&budget, "obs_phase_coverage_min"),
            true,
        );
    }

    if failures > 0 {
        eprintln!("{failures} perf-budget ceiling(s) breached (see {budget_path})");
        // Name the culprit: snapshot the representative instrumented
        // workload, rank its counters against the checked-in reference,
        // and leave the evidence on disk for CI to upload.
        let snapshot = obs_metrics_snapshot();
        write_breach_artifact("obs-breach.metrics.json", &snapshot);
        match std::fs::read_to_string("BENCH_obs.json") {
            Ok(reference) => match obs_diff_report(&reference, &snapshot, 10) {
                Ok(report) => {
                    eprint!("top movers vs BENCH_obs.json:\n{report}");
                    write_breach_artifact("obs-breach.diff.txt", &report);
                }
                Err(error) => eprintln!("(obs-diff attribution failed: {error})"),
            },
            Err(_) => {
                eprintln!("(no BENCH_obs.json reference here; skipping the obs-diff attribution)");
            }
        }
        let dump = rp_obs::flight_snapshot("budget_breach");
        write_breach_artifact("obs-breach.flight.jsonl", &dump);
        std::process::exit(1);
    }
    println!("all perf-budget ceilings hold ({budget_path})");
}

/// Best-effort write of a breach artifact — attribution must never mask
/// the original budget failure, so write errors only warn.
fn write_breach_artifact(path: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(error) => eprintln!("(cannot write {path}: {error})"),
    }
}

/// Writes `BENCH_failures.json`: the resilience trajectory — per
/// heuristic candidate the survival rate, mean served fraction, cost
/// delta of surviving repairs, and mean/p99 repair latency under the
/// default 200-trial single-failure chaos sweep. The sweep's base seed
/// is recorded in the file, so every number is reproducible from it.
/// Any outcome failing its machine check aborts the report non-zero.
fn write_failures_report(path: &str) {
    use rp_experiments::{run_resilience, ResilienceConfig};

    let config = ResilienceConfig::new();
    let results = run_resilience(&config);
    let unverified = results.total_unverified();
    if unverified > 0 {
        eprintln!("resilience sweep produced {unverified} UNVERIFIED repair outcome(s)");
        std::process::exit(1);
    }
    let mut entries: Vec<(String, f64)> = vec![
        ("config/seed".to_string(), config.seed as f64),
        ("config/trials".to_string(), config.trials as f64),
        (
            "config/problem_size".to_string(),
            config.problem_size as f64,
        ),
    ];
    for summary in results.summaries() {
        let name = summary.heuristic.acronym();
        entries.push((
            format!("survival_pct/{name}"),
            100.0 * summary.survival_rate,
        ));
        entries.push((
            format!("served_pct/{name}"),
            100.0 * summary.mean_served_fraction,
        ));
        if let Some(delta) = summary.mean_cost_delta_pct {
            entries.push((format!("cost_delta_pct/{name}"), delta));
        }
        entries.push((format!("repair_mean_ms/{name}"), summary.mean_repair_ms));
        entries.push((format!("repair_p99_ms/{name}"), summary.p99_repair_ms));
        entries.push((
            format!("base_fail/{name}"),
            summary.baseline_failures as f64,
        ));
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str(
        "  \"units\": \"*_pct = percent, *_ms = wall-clock ms per repair; config/seed \
         reproduces the whole sweep\",\n",
    );
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// Writes `BENCH_online.json`: the online-engine churn trajectory at
/// `s = 2000` — per policy the sustained re-placements per second, the
/// p50/p99/mean apply latency and the escalation-rung counters under
/// the default 2000-delta / 50 ms-per-delta sweep. The base seed is
/// recorded in the file, so every number is reproducible from it. Any
/// incumbent failing its machine check aborts the report non-zero.
fn write_online_report(path: &str) {
    use rp_experiments::churn::{run_churn, ChurnRunConfig};

    let mut config = ChurnRunConfig::new();
    config.problem_size = 2000;
    let results = run_churn(&config);
    let unverified = results.total_unverified();
    if unverified > 0 {
        eprintln!("churn sweep produced {unverified} UNVERIFIED incumbent(s)");
        std::process::exit(1);
    }
    let mut entries: Vec<(String, f64)> = vec![
        ("config/seed".to_string(), config.seed as f64),
        ("config/deltas".to_string(), config.deltas as f64),
        (
            "config/problem_size".to_string(),
            config.problem_size as f64,
        ),
        (
            "config/budget_ms".to_string(),
            config.budget_ms.map(|ms| ms as f64).unwrap_or(-1.0),
        ),
    ];
    for outcome in &results.per_policy {
        let name = outcome.policy.to_string();
        entries.push((format!("repl_per_sec/{name}"), outcome.replacements_per_sec));
        entries.push((format!("apply_p50_ms/{name}"), outcome.p50_ms));
        entries.push((format!("apply_p99_ms/{name}"), outcome.p99_ms));
        entries.push((format!("apply_mean_ms/{name}"), outcome.mean_ms));
        entries.push((format!("applied/{name}"), outcome.applied as f64));
        entries.push((format!("degraded/{name}"), outcome.degraded as f64));
        entries.push((format!("deferred/{name}"), outcome.deferred as f64));
        entries.push((
            format!("rung_surgical/{name}"),
            outcome.rungs.surgical as f64,
        ));
        entries.push((
            format!("rung_lp_repair/{name}"),
            outcome.rungs.lp_repair as f64,
        ));
        entries.push((format!("rung_rerun/{name}"), outcome.rungs.rerun as f64));
        entries.push((
            format!("rung_degraded/{name}"),
            outcome.rungs.degraded as f64,
        ));
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str(
        "  \"units\": \"repl_per_sec = absorbed deltas per wall second, apply_*_ms = \
         wall-clock ms per apply, the rest are counts; config/seed reproduces the sweep\",\n",
    );
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// Writes `BENCH_heuristics.json`: the LP-guided rounding trajectory —
/// per family the cost-vs-LP gap (percent) and the end-to-end wall
/// clock (LP solve + rounding + repair + pruning), next to the classic
/// ensemble (bandwidth-repaired Section 6 heuristics / validated
/// sequential greedy) for the same instances.
fn write_heuristics_report(path: &str) {
    use rp_core::heuristics::lp_guided::{lp_guided_multi_with, lp_guided_with, BandwidthRepair};
    use rp_core::ilp::{multi_lower_bound, BoundKind};
    use rp_core::multi::{solve_multi_greedy, MultiGreedyOptions};
    use rp_core::Policy;
    use rp_workloads::scenarios::{
        feasible_bandwidth_instance, ill_scaled_bandwidth_instance, multi_object_counting_instance,
        multi_object_instance,
    };

    let options = IlpOptions::with_engine(LpEngine::Revised);
    let mut entries: Vec<(String, f64)> = Vec::new();
    let gap_pct = |cost: u64, bound: f64| 100.0 * (cost as f64 / bound.max(1e-9) - 1.0);

    for (size, family, problem) in [
        (
            120usize,
            "bandwidth",
            feasible_bandwidth_instance(120, 0.4, 31),
        ),
        (400, "bandwidth", feasible_bandwidth_instance(400, 0.4, 31)),
        (
            200,
            "bandwidth_ill",
            ill_scaled_bandwidth_instance(200, 0.4, 7),
        ),
    ] {
        let Some(bound) = lower_bound(&problem, BoundKind::Rational) else {
            continue;
        };
        let (ns, rounded) = time_once(|| lp_guided_with(&problem, &options));
        if let Some(placement) = rounded {
            entries.push((
                format!("lp_guided/{family}/s{size}_gap_pct"),
                gap_pct(placement.cost(&problem), bound),
            ));
            entries.push((format!("lp_guided/{family}/s{size}_ms"), ns / 1e6));
        }
        let (ns, classic) = time_once(|| {
            rp_core::Heuristic::BASE
                .iter()
                .filter_map(|&h| BandwidthRepair(h).run(&problem).map(|p| p.cost(&problem)))
                .min()
        });
        if let Some(cost) = classic {
            entries.push((
                format!("classic_repair/{family}/s{size}_gap_pct"),
                gap_pct(cost, bound),
            ));
            entries.push((format!("classic_repair/{family}/s{size}_ms"), ns / 1e6));
        }
    }

    // The counting 2-object family, where the rational bound gap is
    // dominated by heuristic quality rather than the intrinsic
    // multi-object integrality gap of the jittered-cost family.
    for size in [120usize, 200] {
        let problem = multi_object_counting_instance(size, 2, 0.4, 11);
        let Some(bound) = multi_lower_bound(&problem, BoundKind::Rational) else {
            continue;
        };
        let (ns, rounded) = time_once(|| lp_guided_multi_with(&problem, &options));
        if let Some(placement) = rounded {
            entries.push((
                format!("lp_guided/multi_counting/s{size}_gap_pct"),
                gap_pct(placement.cost(&problem), bound),
            ));
            entries.push((format!("lp_guided/multi_counting/s{size}_ms"), ns / 1e6));
        }
    }

    for (objects, size) in [(2usize, 120usize), (4, 120), (2, 400)] {
        let problem = multi_object_instance(size, objects, 0.4, 11);
        let Some(bound) = multi_lower_bound(&problem, BoundKind::Rational) else {
            continue;
        };
        let (ns, rounded) = time_once(|| lp_guided_multi_with(&problem, &options));
        if let Some(placement) = rounded {
            entries.push((
                format!("lp_guided/multi_{objects}obj/s{size}_gap_pct"),
                gap_pct(placement.cost(&problem), bound),
            ));
            entries.push((format!("lp_guided/multi_{objects}obj/s{size}_ms"), ns / 1e6));
        }
        let (ns, greedy) = time_once(|| {
            solve_multi_greedy(&problem, &MultiGreedyOptions::default())
                .filter(|p| p.is_valid(&problem, Policy::Multiple))
                .map(|p| p.cost(&problem))
        });
        if let Some(cost) = greedy {
            entries.push((
                format!("greedy/multi_{objects}obj/s{size}_gap_pct"),
                gap_pct(cost, bound),
            ));
            entries.push((format!("greedy/multi_{objects}obj/s{size}_ms"), ns / 1e6));
        }
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str(
        "  \"units\": \"*_gap_pct = 100*(cost/LP bound - 1), *_ms = wall-clock ms for the \
         whole candidate (LP solve + rounding where applicable)\",\n",
    );
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// Writes `BENCH_scenarios.json`: the bandwidth-constrained and
/// multi-object formulation trajectory — solve times and iteration
/// counts per family and scale, the equilibration's entry-spread
/// reduction and its iteration effect on the ill-scaled family, and a
/// revised-vs-dense agreement probe at a size the dense oracle still
/// reaches.
fn write_scenarios_report(path: &str) {
    use rp_core::ilp::{build_model, build_multi_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{solve_lp_revised_reusing, RevisedWorkspace, Scaling, SimplexOptions, Status};
    use rp_workloads::scenarios::{
        bandwidth_scale_instance, feasible_bandwidth_instance, ill_scaled_bandwidth_instance,
        multi_object_bandwidth_instance, multi_object_instance,
    };

    let mut entries: Vec<(String, f64)> = Vec::new();
    let options = SimplexOptions::default();
    let mut workspace = RevisedWorkspace::new();

    // Bandwidth-constrained LP bound across scales, on the
    // guaranteed-feasible headroom family so the timings always
    // describe a completed solve.
    for size in [120usize, 400] {
        let problem = feasible_bandwidth_instance(size, 0.4, 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        workspace.invalidate();
        let (ns, solution) =
            time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
        if solution.status == Status::Optimal {
            entries.push((format!("bandwidth_lp/s{size}_ms"), ns / 1e6));
            entries.push((
                format!("bandwidth_lp/s{size}_iters"),
                workspace.last_stats().iterations() as f64,
            ));
            entries.push((
                format!("bandwidth_lp/s{size}_rows"),
                formulation.model.num_constraints() as f64,
            ));
        }
    }

    // The s = 2000 class (ill-scaled wide-range platform).
    let problem = bandwidth_scale_instance(0.2, 31);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    workspace.invalidate();
    let (ns, solution) =
        time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
    if solution.status == Status::Optimal {
        entries.push(("bandwidth_lp/s2000_ms".to_string(), ns / 1e6));
        entries.push((
            "bandwidth_lp/s2000_iters".to_string(),
            workspace.last_stats().iterations() as f64,
        ));
        entries.push((
            "bandwidth_lp/s2000_rows".to_string(),
            formulation.model.num_constraints() as f64,
        ));
        entries.push((
            "bandwidth_lp/s2000_cols".to_string(),
            formulation.model.num_vars() as f64,
        ));
        if let Some((before, after)) = workspace.scaling_spread() {
            entries.push(("scaling/s2000_spread_before".to_string(), before));
            entries.push(("scaling/s2000_spread_after".to_string(), after));
        }
    }

    // Equilibration effect on the ill-scaled family. Three runs:
    // `scaled` is the shipping `Auto` decision (which deliberately
    // leaves this family's ~2e5 spread alone — see `AUTO_SPREAD`),
    // `unscaled` forces the pass off, and `geometric` forces it on to
    // keep the iteration cost of equilibrating this family honest in
    // the snapshot (it collapses the spread but pays extra iterations
    // in scaled-unit tolerance/tie-break geometry).
    let problem = ill_scaled_bandwidth_instance(200, 0.4, 7);
    let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
    for (scaling, label) in [
        (Scaling::Auto, "scaled"),
        (Scaling::Off, "unscaled"),
        (Scaling::Geometric, "geometric"),
    ] {
        let scaled_options = SimplexOptions {
            scaling,
            ..SimplexOptions::default()
        };
        workspace.invalidate();
        let (ns, solution) = time_once(|| {
            solve_lp_revised_reusing(&formulation.model, &scaled_options, &mut workspace)
        });
        if solution.status == Status::Optimal {
            entries.push((format!("scaling/illscaled_s200_{label}_ms"), ns / 1e6));
            entries.push((
                format!("scaling/illscaled_s200_{label}_iters"),
                workspace.last_stats().iterations() as f64,
            ));
            // Spread diagnostics exist only for the forced-on run.
            if let Some((before, after)) = workspace.scaling_spread() {
                entries.push(("scaling/illscaled_s200_spread_before".to_string(), before));
                entries.push(("scaling/illscaled_s200_spread_after".to_string(), after));
            }
        }
    }

    // Multi-object bounds: shared capacities, then shared links too.
    for (objects, size) in [(2usize, 120usize), (4, 120), (4, 400)] {
        let problem = multi_object_instance(size, objects, 0.4, 11);
        let formulation = build_multi_model(&problem, Integrality::RationalBound);
        workspace.invalidate();
        let (ns, solution) =
            time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
        if solution.status == Status::Optimal {
            entries.push((format!("multi_lp/{objects}obj_s{size}_ms"), ns / 1e6));
            entries.push((
                format!("multi_lp/{objects}obj_s{size}_iters"),
                workspace.last_stats().iterations() as f64,
            ));
        }
    }
    let problem = multi_object_bandwidth_instance(120, 3, 0.4, 11);
    let formulation = build_multi_model(&problem, Integrality::RationalBound);
    workspace.invalidate();
    let (ns, solution) =
        time_once(|| solve_lp_revised_reusing(&formulation.model, &options, &mut workspace));
    if solution.status == Status::Optimal {
        entries.push(("multi_lp/3obj_s120_bandwidth_ms".to_string(), ns / 1e6));
        entries.push((
            "multi_lp/3obj_s120_bandwidth_rows".to_string(),
            formulation.model.num_constraints() as f64,
        ));
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str(
        "  \"units\": \"*_ms = wall-clock ms (one shot), *_iters = simplex iterations, \
         spread_* = max|a|/min|a| of the constraint matrix\",\n",
    );
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// Writes `BENCH_pricing.json`: the pricing-machinery trajectory that
/// PR 9's tentpole pins. For each scale (`s = 400`, `s = 2000`) and
/// each rule pair —
///
/// * `partial` — candidate-queue partial pricing + dual devex (the
///   shipping default),
/// * `devex` — full devex scan + dual devex,
/// * `dantzig` — textbook most-negative reduced cost + dual devex,
/// * `dual_mv` — partial pricing + the pre-PR-9 most-violated-row dual
///   rule (isolates what the dual devex weights buy),
///
/// the report records a **cold** solve (wall ms, simplex iterations,
/// primal + dual bound flips) followed by a **warm** sibling re-solve
/// (same matrix, one right-hand side nudged — the `check_budget`
/// sibling pattern) through the same workspace — the
/// branch-and-bound / λ-sweep path that partial pricing is meant to
/// keep cheap.
fn write_pricing_report(path: &str) {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{
        solve_lp_revised_reusing, DualPricing, Pricing, RevisedWorkspace, SimplexOptions, Status,
    };
    use rp_workloads::scenarios::{bandwidth_scale_instance, feasible_bandwidth_instance};

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut workspace = RevisedWorkspace::new();
    let rules: [(Pricing, DualPricing, &str); 4] = [
        (Pricing::Partial, DualPricing::Devex, "partial"),
        (Pricing::Devex, DualPricing::Devex, "devex"),
        (Pricing::Dantzig, DualPricing::Devex, "dantzig"),
        (Pricing::Partial, DualPricing::MostViolated, "dual_mv"),
    ];
    for size in [400usize, 2000] {
        let problem = if size == 2000 {
            bandwidth_scale_instance(0.2, 31)
        } else {
            feasible_bandwidth_instance(size, 0.4, 31)
        };
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        // Untimed warm-up so the first rule doesn't pay the workspace's
        // one-off buffer growth on this size.
        workspace.invalidate();
        solve_lp_revised_reusing(
            &formulation.model,
            &SimplexOptions::default(),
            &mut workspace,
        );
        for (pricing, dual_pricing, label) in rules {
            let options = SimplexOptions {
                pricing,
                dual_pricing,
                ..SimplexOptions::default()
            };
            workspace.invalidate();
            let (ns, solution) = time_once(|| {
                solve_lp_revised_reusing(&formulation.model, &options, &mut workspace)
            });
            if solution.status != Status::Optimal {
                eprintln!(
                    "pricing report: s={size} {label} cold solve failed: {}",
                    solution.status
                );
                continue;
            }
            let stats = workspace.last_stats();
            entries.push((format!("pricing/s{size}_{label}_cold_ms"), ns / 1e6));
            entries.push((
                format!("pricing/s{size}_{label}_cold_iters"),
                stats.iterations() as f64,
            ));
            entries.push((
                format!("pricing/s{size}_{label}_cold_flips"),
                (stats.bound_flips + stats.dual_bound_flips) as f64,
            ));
            // Warm sibling: identical matrix, one `<=` right-hand side
            // relaxed by +1.0 (the `check_budget` sibling pattern;
            // nudging a demand/flow row can tip the instance
            // infeasible), so the workspace's basis and factorisation
            // stay valid and the sibling provably stays feasible.
            let mut sibling = formulation.model.clone();
            let id = sibling
                .constraint_ids()
                .find(|&id| sibling.constraint(id).cmp == rp_lp::Cmp::Le);
            let Some(id) = id else {
                continue;
            };
            let rhs = sibling.constraint(id).rhs;
            sibling.set_rhs(id, rhs + 1.0);
            let (ns, solution) =
                time_once(|| solve_lp_revised_reusing(&sibling, &options, &mut workspace));
            if solution.status != Status::Optimal {
                eprintln!(
                    "pricing report: s={size} {label} warm sibling failed: {}",
                    solution.status
                );
                continue;
            }
            let stats = workspace.last_stats();
            entries.push((format!("pricing/s{size}_{label}_warm_ms"), ns / 1e6));
            entries.push((
                format!("pricing/s{size}_{label}_warm_iters"),
                stats.iterations() as f64,
            ));
            entries.push((
                format!("pricing/s{size}_{label}_warm_flips"),
                (stats.bound_flips + stats.dual_bound_flips) as f64,
            ));
        }
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str(
        "  \"units\": \"*_ms = wall-clock ms (one shot), *_iters = simplex iterations, \
         *_flips = primal + dual bound flips; cold = fresh workspace, warm = same matrix \
         with one <= right-hand side relaxed\",\n",
    );
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// Writes `BENCH_revised.json`: dense-tableau vs revised-simplex
/// timings, at three levels —
///
/// * `lp_solve/*` — the pure solver on a prebuilt Multiple relaxation
///   with a reused workspace (the `lp_solver` criterion bench's
///   setting; this is the apples-to-apples engine comparison);
/// * `lp_rational_bound/*` — the full Section 7.1 bound path
///   (formulation build + solve), what the sweep actually pays;
/// * `milp_mixed_bound/*` — the capped mixed bound, where the revised
///   engine's warm-started branch-and-bound nodes pay off;
///
/// plus the paper-scale `s = 400` bound under **both** engines (one
/// shot each — the dense tableau needs hundreds of milliseconds there,
/// which is exactly why the revised engine exists).
fn write_revised_report(path: &str) {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{
        solve_lp_reusing, solve_lp_revised_reusing, RevisedWorkspace, SimplexOptions,
        SimplexWorkspace,
    };

    let mut entries: Vec<(String, f64)> = Vec::new();
    for size in [20usize, 40, 80, 120] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);

        // Solver-level comparison on the prebuilt relaxation.
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let options = SimplexOptions::default();
        let mut dense_ws = SimplexWorkspace::new();
        let dense_solve = time_ns(|| {
            black_box(solve_lp_reusing(
                black_box(&formulation.model),
                &options,
                &mut dense_ws,
            ));
        });
        let mut revised_ws = RevisedWorkspace::new();
        let revised_solve = time_ns(|| {
            black_box(solve_lp_revised_reusing(
                black_box(&formulation.model),
                &options,
                &mut revised_ws,
            ));
        });
        entries.push((format!("lp_solve/dense/{size}"), dense_solve));
        entries.push((format!("lp_solve/revised/{size}"), revised_solve));
        entries.push((
            format!("speedup/lp_solve/{size}"),
            dense_solve / revised_solve,
        ));

        // Full bound path (build + solve).
        let dense_opts = IlpOptions::with_engine(LpEngine::DenseTableau);
        let revised_opts = IlpOptions::with_engine(LpEngine::Revised);
        let dense = time_ns(|| {
            black_box(lower_bound_with(
                black_box(&problem),
                BoundKind::Rational,
                &dense_opts,
            ));
        });
        let revised = time_ns(|| {
            black_box(lower_bound_with(
                black_box(&problem),
                BoundKind::Rational,
                &revised_opts,
            ));
        });
        entries.push((format!("lp_rational_bound/dense/{size}"), dense));
        entries.push((format!("lp_rational_bound/revised/{size}"), revised));
        entries.push((format!("speedup/lp_rational_bound/{size}"), dense / revised));

        // Warm-started mixed bound (capped) under both engines; the
        // larger sizes explore enough nodes to show the warm-start win.
        if size <= 40 {
            let cap = |engine| IlpOptions {
                branch_bound: BranchBoundOptions {
                    max_nodes: 100,
                    engine,
                    ..BranchBoundOptions::default()
                },
            };
            let dense_milp = time_ns(|| {
                black_box(lower_bound_with(
                    black_box(&problem),
                    BoundKind::Mixed,
                    &cap(LpEngine::DenseTableau),
                ));
            });
            let revised_milp = time_ns(|| {
                black_box(lower_bound_with(
                    black_box(&problem),
                    BoundKind::Mixed,
                    &cap(LpEngine::Revised),
                ));
            });
            entries.push((format!("milp_mixed_bound/dense/{size}"), dense_milp));
            entries.push((format!("milp_mixed_bound/revised/{size}"), revised_milp));
            entries.push((
                format!("speedup/milp_mixed_bound/{size}"),
                dense_milp / revised_milp,
            ));
        }
    }
    // Paper scale, one shot per engine.
    {
        let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
        let revised_opts = IlpOptions::with_engine(LpEngine::Revised);
        let (revised_ns, bound) =
            time_once(|| lower_bound_with(&problem, BoundKind::Rational, &revised_opts));
        let dense_opts = IlpOptions::with_engine(LpEngine::DenseTableau);
        let (dense_ns, _) =
            time_once(|| lower_bound_with(&problem, BoundKind::Rational, &dense_opts));
        entries.push(("lp_rational_bound/dense/400_ms".to_string(), dense_ns / 1e6));
        entries.push((
            "lp_rational_bound/revised/400_ms".to_string(),
            revised_ns / 1e6,
        ));
        entries.push((
            "speedup/lp_rational_bound/400".to_string(),
            dense_ns / revised_ns,
        ));
        entries.push((
            "lp_rational_bound/revised/400_value".to_string(),
            bound.unwrap_or(f64::NAN),
        ));
    }

    // A failed solve or a zero-duration timing would produce NaN/inf,
    // which are not valid JSON literals — drop such entries instead of
    // corrupting the whole report.
    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str("  \"units\": \"ns per op unless the metric name says otherwise; speedup/* = dense over revised\",\n");
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

/// A deterministic ill-scaled LP family (dense-ish `≤` rows whose
/// coefficients span four orders of magnitude): the setting where devex
/// reference weights separate from Dantzig pricing.
fn ill_scaled_model(n: usize, m: usize, seed: u64) -> rp_lp::Model {
    use rp_lp::{lin_sum, Cmp, Model, Sense};
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut model = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let scale = 10f64.powi((next() % 5) as i32 - 2);
            let objective = ((next() % 1000) as f64 / 100.0 + 0.1) * scale;
            model.add_var(
                format!("x{j}"),
                0.0,
                Some(((next() % 90) + 10) as f64),
                objective,
            )
        })
        .collect();
    for i in 0..m {
        let mut terms = vec![];
        for &v in &vars {
            if (next() % 100) < 30 {
                let scale = 10f64.powi((next() % 5) as i32 - 2);
                terms.push((((next() % 1000) as f64 / 100.0 + 0.05) * scale, v));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = ((next() % 5000) + 500) as f64 / 10.0;
        model.add_constraint(format!("c{i}"), lin_sum(terms), Cmp::Le, rhs);
    }
    model
}

/// Writes `BENCH_sparse.json`: the sparse-LU / Forrest–Tomlin / devex
/// trajectory of the revised engine —
///
/// * `lp_solve/{dense,revised}/<s>` — cold engine-to-engine solve
///   comparison on prebuilt Multiple relaxations (the apples-to-apples
///   setting `BENCH_revised.json` used, so
///   `speedup_vs_dense_lu/lp_solve/<s>` can be computed against the
///   recorded dense-LU numbers when that file is present);
/// * `lp_resolve_warm/<s>` — the sibling fast path: re-solving the same
///   matrix after an objective/rhs refresh (refactorisation + cleanup
///   pivots only), what the λ-sharded sweep pays per sibling trial;
/// * `iters/{devex,dantzig}/<s>` — simplex iteration counts per pricing
///   rule at `s = 80..400`, the devex payoff on the degenerate replica
///   LPs;
/// * `factor/{m,nnz_l,nnz_u}/<s>`, `factor/refactor_ns/<s>`,
///   `ftran_ns/<s>`, `btran_ns/<s>` — factor sparsity and the
///   nnz-scaling of one Markowitz refactorisation and of hyper-sparse
///   unit solves;
/// * `lp_rational_bound/revised/{400,2000}_ms` — one-shot paper-scale
///   and multi-thousand-row bound solves (the dense tableau is not run
///   at these sizes; the s = 400 reference lives in
///   `BENCH_revised.json`).
fn write_sparse_report(path: &str) {
    use rp_core::ilp::{build_model, Integrality};
    use rp_core::Policy;
    use rp_lp::{Pricing, RevisedWorkspace, SimplexOptions, SimplexWorkspace, Status};
    use rp_workloads::platform::paper_scale_instance_sized;

    let reference = std::fs::read_to_string("BENCH_revised.json")
        .map(|text| parse_metrics(&text))
        .unwrap_or_default();
    let mut entries: Vec<(String, f64)> = Vec::new();

    let devex = SimplexOptions::default();
    let dantzig = SimplexOptions {
        pricing: Pricing::Dantzig,
        ..SimplexOptions::default()
    };

    for size in [20usize, 40, 80, 120] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let model = &formulation.model;

        let mut dense_ws = SimplexWorkspace::new();
        let dense_solve = time_ns(|| {
            black_box(rp_lp::solve_lp_reusing(
                black_box(model),
                &devex,
                &mut dense_ws,
            ));
        });
        let mut ws = RevisedWorkspace::new();
        let revised_solve = time_ns(|| {
            black_box(ws.solve_cold(black_box(model), &devex));
        });
        entries.push((format!("lp_solve/dense/{size}"), dense_solve));
        entries.push((format!("lp_solve/revised/{size}"), revised_solve));
        entries.push((
            format!("speedup/lp_solve/{size}"),
            dense_solve / revised_solve,
        ));
        if let Some((_, old)) = reference
            .iter()
            .find(|(name, _)| name == &format!("lp_solve/revised/{size}"))
        {
            entries.push((
                format!("speedup_vs_dense_lu/lp_solve/{size}"),
                old / revised_solve,
            ));
        }
        // The sibling fast path: same matrix, refreshed data.
        let warm_solve = time_ns(|| {
            black_box(ws.solve_warm(black_box(model), &devex));
        });
        entries.push((format!("lp_resolve_warm/{size}"), warm_solve));

        if size >= 80 {
            ws.solve_cold(model, &devex);
            let devex_iters = ws.last_stats().iterations();
            entries.push((format!("iters/devex/{size}"), devex_iters as f64));
            let (lnnz, unnz) = ws.factor_nnz();
            entries.push((format!("factor/m/{size}"), model.num_constraints() as f64));
            entries.push((format!("factor/nnz_l/{size}"), lnnz as f64));
            entries.push((format!("factor/nnz_u/{size}"), unnz as f64));
            let refactor_ns = time_ns(|| {
                black_box(ws.bench_refactor());
            });
            entries.push((format!("factor/refactor_ns/{size}"), refactor_ns));
            let mut unit = 0usize;
            let ftran_ns = time_ns(|| {
                ws.bench_ftran_unit(black_box(unit));
                unit = unit.wrapping_add(1);
            });
            entries.push((format!("ftran_ns/{size}"), ftran_ns));
            let btran_ns = time_ns(|| {
                ws.bench_btran_unit(black_box(unit));
                unit = unit.wrapping_add(1);
            });
            entries.push((format!("btran_ns/{size}"), btran_ns));
            ws.invalidate();
            ws.solve_cold(model, &dantzig);
            let dantzig_iters = ws.last_stats().iterations();
            entries.push((format!("iters/dantzig/{size}"), dantzig_iters as f64));
        }
    }

    // Paper scale (s = 400) and a multi-thousand-row scenario — only
    // the sparse-LU engine is run at these sizes. The `_ms` metric is a
    // one-shot `lower_bound` (formulation build + solve), matching how
    // `BENCH_revised.json` recorded the dense-LU engine; `_solve_ms` is
    // the warm-cache median of the solve alone.
    for (s, label) in [(400usize, "400"), (2000usize, "2000")] {
        let problem = paper_scale_instance_sized(s, PlatformKind::default_heterogeneous(), 0.4, 31);
        let revised_opts = IlpOptions::with_engine(LpEngine::Revised);
        let (bound_ns, bound) =
            time_once(|| lower_bound_with(&problem, BoundKind::Rational, &revised_opts));
        if let Some(bound) = bound {
            entries.push((
                format!("lp_rational_bound/revised/{label}_ms"),
                bound_ns / 1e6,
            ));
            entries.push((format!("lp_rational_bound/revised/{label}_bound"), bound));
        }
        let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
        let model = &formulation.model;
        let mut ws = RevisedWorkspace::new();
        let (_, solution) = time_once(|| ws.solve_cold(model, &devex));
        if solution.status != Status::Optimal {
            eprintln!("s={s} revised solve failed: {}", solution.status);
            continue;
        }
        let devex_iters = ws.last_stats().iterations();
        let solve_ns = time_ns(|| {
            black_box(ws.solve_cold(black_box(model), &devex));
        });
        entries.push((format!("lp_solve_ms/revised/{label}"), solve_ns / 1e6));
        // The sibling fast path the λ-sharded sweep pays: re-solving
        // the same matrix after a data refresh.
        ws.solve_cold(model, &devex);
        let warm_ns = time_ns(|| {
            black_box(ws.solve_warm(black_box(model), &devex));
        });
        entries.push((format!("lp_resolve_warm_ms/{label}"), warm_ns / 1e6));
        entries.push((format!("speedup/sibling_warm/{label}"), solve_ns / warm_ns));
        entries.push((
            format!("lp_rational_bound/revised/{label}_value"),
            solution.objective,
        ));
        entries.push((format!("iters/devex/{label}"), devex_iters as f64));
        let (lnnz, unnz) = ws.factor_nnz();
        entries.push((format!("factor/m/{label}"), model.num_constraints() as f64));
        entries.push((format!("factor/nnz_l/{label}"), lnnz as f64));
        entries.push((format!("factor/nnz_u/{label}"), unnz as f64));
        let refactor_ns = time_ns(|| {
            black_box(ws.bench_refactor());
        });
        entries.push((format!("factor/refactor_ns/{label}"), refactor_ns));
        let mut unit = 0usize;
        let ftran_ns = time_ns(|| {
            ws.bench_ftran_unit(black_box(unit));
            unit = unit.wrapping_add(1);
        });
        entries.push((format!("ftran_ns/{label}"), ftran_ns));
        let btran_ns = time_ns(|| {
            ws.bench_btran_unit(black_box(unit));
            unit = unit.wrapping_add(1);
        });
        entries.push((format!("btran_ns/{label}"), btran_ns));
        let (_, dantzig_sol) = time_once(|| ws.solve_cold(model, &dantzig));
        if dantzig_sol.status == Status::Optimal {
            entries.push((
                format!("iters/dantzig/{label}"),
                ws.last_stats().iterations() as f64,
            ));
        }
        if s == 400 {
            // Like-for-like against the recorded dense-LU engine: both
            // sides are one-shot `lower_bound` runs (build + solve).
            if let Some((_, old_ms)) = reference
                .iter()
                .find(|(name, _)| name == "lp_rational_bound/revised/400_ms")
            {
                entries.push((
                    "speedup_vs_dense_lu/lp_rational_bound/400".to_string(),
                    old_ms / (bound_ns / 1e6),
                ));
            }
        }
    }

    // Devex vs Dantzig where column norms actually differ: a
    // deterministic ill-scaled LP family (coefficients spanning four
    // orders of magnitude). On the near-unimodular replica relaxations
    // the two rules provably coincide (every tableau entry is ±1, so
    // the reference weights never leave 1 — see the `iters/*` pairs
    // above); here devex needs fewer iterations.
    {
        let mut devex_total = 0usize;
        let mut dantzig_total = 0usize;
        for seed in 1..=8u64 {
            let model = ill_scaled_model(120, 60, seed * 7919);
            for (pricing, total) in [
                (Pricing::Devex, &mut devex_total),
                (Pricing::Dantzig, &mut dantzig_total),
            ] {
                let opts = SimplexOptions {
                    pricing,
                    ..SimplexOptions::default()
                };
                let mut ws = RevisedWorkspace::new();
                let solution = ws.solve_cold(&model, &opts);
                if solution.status == Status::Optimal {
                    *total += ws.last_stats().iterations();
                }
            }
        }
        entries.push(("iters/devex/illscaled".to_string(), devex_total as f64));
        entries.push(("iters/dantzig/illscaled".to_string(), dantzig_total as f64));
    }

    entries.retain(|(name, value)| {
        let keep = value.is_finite();
        if !keep {
            eprintln!("skipping non-finite metric {name} = {value}");
        }
        keep
    });
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    s.push_str("  \"units\": \"ns per op unless the metric name says otherwise; speedup_vs_dense_lu/* = PR2 dense-LU revised engine over this sparse-LU engine\",\n");
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("{s}");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut output = String::from("BENCH_baseline.json");
    let mut revised_output = String::from("BENCH_revised.json");
    let mut sparse_output = String::from("BENCH_sparse.json");
    let mut scenarios_output = String::from("BENCH_scenarios.json");
    let mut heuristics_output = String::from("BENCH_heuristics.json");
    let mut failures_output = String::from("BENCH_failures.json");
    let mut online_output = String::from("BENCH_online.json");
    let mut obs_output = String::from("BENCH_obs.json");
    let mut pricing_output = String::from("BENCH_pricing.json");
    let mut compare: Option<String> = None;
    let mut sparse_only = false;
    let mut scenarios_only = false;
    let mut heuristics_only = false;
    let mut failures_only = false;
    let mut online_only = false;
    let mut obs_only = false;
    let mut pricing_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {
                compare = args.get(i + 1).cloned();
                i += 2;
            }
            "--smoke-revised" => {
                smoke_revised();
                return;
            }
            "--smoke-bandwidth" => {
                smoke_bandwidth();
                return;
            }
            "--smoke-heuristics" => {
                smoke_heuristics();
                return;
            }
            "--smoke-failures" => {
                smoke_failures();
                return;
            }
            "--smoke-online" => {
                smoke_online();
                return;
            }
            "--smoke-obs" => {
                smoke_obs();
                return;
            }
            "--smoke-pricing" => {
                smoke_pricing();
                return;
            }
            "--check-budget" => {
                // Up to two operands, in either order: a budget file
                // (recognised by its `.toml` suffix, default
                // `perf-budget.toml`) and a section filter
                // (`--check-budget lp` re-measures only `[lp]`).
                let mut path: Option<String> = None;
                let mut filter: Option<String> = None;
                for arg in args.iter().skip(i + 1).take(2) {
                    if arg.starts_with("--") {
                        break;
                    }
                    if arg.ends_with(".toml") {
                        path = Some(arg.clone());
                    } else {
                        filter = Some(arg.clone());
                    }
                }
                let path = path.unwrap_or_else(|| "perf-budget.toml".to_string());
                check_budget(&path, filter.as_deref());
                return;
            }
            "--obs-diff" => {
                let old_path = args.get(i + 1).filter(|p| !p.starts_with("--")).cloned();
                let new_path = args.get(i + 2).filter(|p| !p.starts_with("--")).cloned();
                let Some(old_path) = old_path else {
                    eprintln!("--obs-diff needs at least one snapshot path (old [new])");
                    std::process::exit(1);
                };
                obs_diff(&old_path, new_path.as_deref());
                return;
            }
            "--sparse-only" => {
                sparse_only = true;
                i += 1;
            }
            "--scenarios-only" => {
                scenarios_only = true;
                i += 1;
            }
            "--heuristics-only" => {
                heuristics_only = true;
                i += 1;
            }
            "--failures-only" => {
                failures_only = true;
                i += 1;
            }
            "--online-only" => {
                online_only = true;
                i += 1;
            }
            "--obs-only" => {
                obs_only = true;
                i += 1;
            }
            "--pricing-only" => {
                pricing_only = true;
                i += 1;
            }
            "--pricing-out" => {
                if let Some(path) = args.get(i + 1) {
                    pricing_output = path.clone();
                }
                i += 2;
            }
            "--obs-out" => {
                if let Some(path) = args.get(i + 1) {
                    obs_output = path.clone();
                }
                i += 2;
            }
            "--revised-out" => {
                if let Some(path) = args.get(i + 1) {
                    revised_output = path.clone();
                }
                i += 2;
            }
            "--sparse-out" => {
                if let Some(path) = args.get(i + 1) {
                    sparse_output = path.clone();
                }
                i += 2;
            }
            "--scenarios-out" => {
                if let Some(path) = args.get(i + 1) {
                    scenarios_output = path.clone();
                }
                i += 2;
            }
            "--heuristics-out" => {
                if let Some(path) = args.get(i + 1) {
                    heuristics_output = path.clone();
                }
                i += 2;
            }
            "--failures-out" => {
                if let Some(path) = args.get(i + 1) {
                    failures_output = path.clone();
                }
                i += 2;
            }
            "--online-out" => {
                if let Some(path) = args.get(i + 1) {
                    online_output = path.clone();
                }
                i += 2;
            }
            other => {
                output = other.to_string();
                i += 1;
            }
        }
    }
    if sparse_only {
        write_sparse_report(&sparse_output);
        return;
    }
    if scenarios_only {
        write_scenarios_report(&scenarios_output);
        return;
    }
    if heuristics_only {
        write_heuristics_report(&heuristics_output);
        return;
    }
    if failures_only {
        write_failures_report(&failures_output);
        return;
    }
    if online_only {
        write_online_report(&online_output);
        return;
    }
    if obs_only {
        write_obs_report(&obs_output);
        return;
    }
    if pricing_only {
        write_pricing_report(&pricing_output);
        return;
    }

    let mut metrics: Vec<(String, f64)> = Vec::new();

    // ---- Heuristics and the full MixedBest sweep. ----
    for (platform, platform_name) in [
        (PlatformKind::default_homogeneous(), "homogeneous"),
        (PlatformKind::default_heterogeneous(), "heterogeneous"),
    ] {
        for &size in &MICRO_SIZES {
            let problem = bench_instance(size, 0.5, platform, 1234 + size as u64);
            for heuristic in Heuristic::BASE {
                let ns = time_ns(|| {
                    black_box(heuristic.run(black_box(&problem)));
                });
                metrics.push((
                    format!("heuristic/{}/{platform_name}/{size}", heuristic.acronym()),
                    ns,
                ));
            }
            let ns = time_ns(|| {
                black_box(Heuristic::MixedBest.run(black_box(&problem)));
            });
            metrics.push((format!("full_sweep/{platform_name}/{size}"), ns));
            let allocs = allocs_per_call(|| {
                black_box(Heuristic::MixedBest.run(black_box(&problem)));
            });
            metrics.push((format!("allocs/full_sweep/{platform_name}/{size}"), allocs));

            // The pooled driver the parallel sweep pins per worker: the
            // incumbent and every heuristic buffer are reused, so the
            // steady state must be allocation-free.
            let mut pooled = MixedBest::new();
            let allocs = allocs_per_call(|| {
                black_box(pooled.full_sweep(black_box(&problem)));
            });
            metrics.push((
                format!("allocs/full_sweep_pooled/{platform_name}/{size}"),
                allocs,
            ));

            // Steady-state inner loops: one reused state, reset between
            // runs. This is the path MixedBest drives; it must not
            // allocate at all once the buffers are warm.
            let mut state = HeuristicState::new(&problem);
            for heuristic in Heuristic::BASE {
                let allocs = allocs_per_call(|| {
                    state.reset();
                    black_box(heuristic.run_with(&mut state));
                });
                metrics.push((
                    format!(
                        "allocs/heuristic_steady/{}/{platform_name}/{size}",
                        heuristic.acronym()
                    ),
                    allocs,
                ));
            }
        }
    }

    // ---- Traversal primitives. ----
    for &size in &MICRO_SIZES {
        let problem = bench_instance(size, 0.5, PlatformKind::default_homogeneous(), 99);
        let tree = problem.tree();
        let ns = time_ns(|| {
            let mut acc = 0usize;
            for client in tree.client_ids() {
                for node in tree.ancestors_of_client(client) {
                    acc += node.index();
                }
            }
            black_box(acc);
        });
        metrics.push((format!("ancestors_pass/{size}"), ns));
        let allocs = allocs_per_call(|| {
            let mut acc = 0usize;
            for client in tree.client_ids() {
                for node in tree.ancestors_of_client(client) {
                    acc += node.index();
                }
            }
            black_box(acc);
        });
        metrics.push((format!("allocs/ancestors_pass/{size}"), allocs));

        let nodes: Vec<_> = tree.node_ids().collect();
        let ns = time_ns(|| {
            let mut hits = 0usize;
            for &a in &nodes {
                for &b in &nodes {
                    hits += usize::from(tree.node_is_ancestor_or_self(a, b));
                }
            }
            black_box(hits);
        });
        metrics.push((format!("ancestor_check_pass/{size}"), ns));
    }

    // ---- LP lower bounds. ----
    for size in [20usize, 40] {
        let problem = bench_instance(size, 0.6, PlatformKind::default_heterogeneous(), 31);
        let ns = time_ns(|| {
            black_box(lower_bound(black_box(&problem), BoundKind::Rational));
        });
        metrics.push((format!("lp_rational_bound/{size}"), ns));
    }
    {
        let problem = bench_instance(20, 0.6, PlatformKind::default_heterogeneous(), 31);
        let capped = IlpOptions {
            branch_bound: BranchBoundOptions {
                max_nodes: 100,
                ..BranchBoundOptions::default()
            },
        };
        let ns = time_ns(|| {
            black_box(lower_bound_with(
                black_box(&problem),
                BoundKind::Mixed,
                &capped,
            ));
        });
        metrics.push(("milp_mixed_bound/20".to_string(), ns));
    }

    // ---- End-to-end sweep throughput. ----
    {
        let mut config = ExperimentConfig::smoke_test();
        config.threads = Some(1);
        let t = Instant::now();
        let results = run_sweep(&config);
        let elapsed = t.elapsed();
        let trees: usize = config.lambdas.len() * config.trees_per_lambda;
        black_box(&results);
        metrics.push(("sweep_smoke_ms".to_string(), elapsed.as_secs_f64() * 1e3));
        metrics.push((
            "sweep_trees_per_sec".to_string(),
            trees as f64 / elapsed.as_secs_f64(),
        ));
    }

    let old_metrics = compare.as_deref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read comparison file {path}: {e}"));
        parse_metrics(&text)
    });

    let json = render_json(&metrics, compare.as_deref(), old_metrics.as_deref());
    std::fs::write(&output, &json).unwrap_or_else(|e| panic!("cannot write {output}: {e}"));
    println!("{json}");
    eprintln!("wrote {output}");

    write_revised_report(&revised_output);
    write_sparse_report(&sparse_output);
    write_scenarios_report(&scenarios_output);
    write_heuristics_report(&heuristics_output);
    write_failures_report(&failures_output);
    write_online_report(&online_output);
    write_obs_report(&obs_output);
    write_pricing_report(&pricing_output);
}

/// Extracts the flat `"name": value` pairs of a previous baseline file.
/// Only understands the format written by `render_json` — fine, since we
/// control both ends.
fn parse_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(start) = text.find("\"metrics\": {") else {
        return out;
    };
    let body = &text[start + "\"metrics\": {".len()..];
    let Some(end) = body.find('}') else {
        return out;
    };
    for line in body[..end].lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn render_json(
    metrics: &[(String, f64)],
    compare_path: Option<&str>,
    old: Option<&[(String, f64)]>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"units\": \"ns per op unless the metric name says otherwise\",\n");
    s.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        s.push_str(&format!("    \"{name}\": {value:.1}{comma}\n"));
    }
    s.push_str("  }");
    if let (Some(path), Some(old)) = (compare_path, old) {
        s.push_str(",\n  \"compare\": {\n");
        s.push_str(&format!("    \"baseline_file\": \"{path}\",\n"));
        s.push_str("    \"speedup\": {\n");
        let shared: Vec<_> = metrics
            .iter()
            .filter_map(|(name, new_value)| {
                old.iter()
                    .find(|(old_name, _)| old_name == name)
                    .map(|(_, old_value)| {
                        // Most metrics are times (lower is better):
                        // speedup = old / new. Throughput metrics are the
                        // other way around.
                        let ratio = if name.ends_with("per_sec") {
                            new_value / old_value.max(1e-9)
                        } else {
                            old_value / new_value.max(1e-9)
                        };
                        (name, ratio)
                    })
            })
            .collect();
        for (i, (name, ratio)) in shared.iter().enumerate() {
            let comma = if i + 1 == shared.len() { "" } else { "," };
            s.push_str(&format!("      \"{name}\": {ratio:.2}{comma}\n"));
        }
        s.push_str("    }\n  }");
    }
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn flatten_walks_nested_objects_into_dotted_paths() {
        let json = r#"{"schema":1,"mode":"full","counters":{"lp.solves":4,"lp.ftran.calls":12},
                       "derived":{"lp.warm.rate":0.5},"note":"text","ok":true,"gone":null,
                       "arr":[7,8]}"#;
        let flat = flatten_json_numbers(json).expect("well-formed");
        let get = |name: &str| {
            flat.iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("schema"), 1.0);
        assert_eq!(get("counters.lp.solves"), 4.0);
        assert_eq!(get("counters.lp.ftran.calls"), 12.0);
        assert_eq!(get("derived.lp.warm.rate"), 0.5);
        assert_eq!(get("arr.0"), 7.0);
        assert_eq!(get("arr.1"), 8.0);
        // Strings, booleans and nulls never become leaves.
        assert!(flat
            .iter()
            .all(|(n, _)| n != "mode" && n != "note" && n != "ok" && n != "gone"));
    }

    #[test]
    fn flatten_rejects_malformed_json() {
        assert!(flatten_json_numbers("{\"a\":").is_none());
        assert!(flatten_json_numbers("{\"a\":1} trailing").is_none());
        assert!(flatten_json_numbers("{\"a\" 1}").is_none());
    }

    #[test]
    fn obs_diff_names_the_injected_top_mover() {
        // A doctored pair: one counter quadruples, one moves slightly,
        // one appears, the rest hold still. The big relative move must
        // rank first.
        let old = r#"{"counters":{"lp.solves":10,"lp.ftran.calls":100,"lp.btran.calls":50}}"#;
        let new = r#"{"counters":{"lp.solves":10,"lp.ftran.calls":400,"lp.btran.calls":51,
                      "lp.queue.rebuilds":3}}"#;
        let report = obs_diff_report(old, new, 10).expect("both parse");
        let first_mover = report.lines().nth(1).expect("at least one mover");
        assert!(
            first_mover.contains("counters.lp.ftran.calls"),
            "expected the injected mover first, got: {first_mover}"
        );
        assert!(report.contains("100 -> 400"));
        assert!(report.contains("(+300.0%)"));
        assert!(report.contains("counters.lp.queue.rebuilds: (new) -> 3"));
        // The unchanged counter stays out of the report.
        assert!(!report.contains("lp.solves:"));
    }

    #[test]
    fn identical_snapshots_diff_to_nothing() {
        let snap = r#"{"counters":{"lp.solves":10}}"#;
        let report = obs_diff_report(snap, snap, 10).expect("parses");
        assert!(report.contains("0 of 1 metrics moved"));
        assert!(report.contains("numerically identical"));
    }

    #[test]
    fn budget_parser_tracks_section_headers() {
        let text = "# comment\n[lp]\ns400_bound_ms = 15.0 # inline\n\n[obs]\n\
                    obs_phase_coverage_min = 0.8\n";
        let budget = parse_budget(text);
        assert_eq!(
            budget,
            vec![
                ("lp".to_string(), "s400_bound_ms".to_string(), 15.0),
                ("obs".to_string(), "obs_phase_coverage_min".to_string(), 0.8),
            ]
        );
        assert_eq!(budget_value(&budget, "obs_phase_coverage_min"), 0.8);
    }
}
