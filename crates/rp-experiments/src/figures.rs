//! One driver per reproduced figure.
//!
//! Each [`FigureId`] maps to an experiment configuration and a pair of
//! tables (success rate and/or relative cost). The `reproduce` binary in
//! `rp-bench` and the criterion benchmarks both go through this module,
//! so the data behind a figure is always produced by exactly one code
//! path.

use rp_core::Heuristic;

use crate::report::{relative_cost_table, runtime_table, success_table, SeriesTable};
use crate::runner::{run_sweep, ExperimentConfig, SweepResults};

/// The figures of the paper's evaluation section (plus the QoS
/// extension sweep described in Section 8 / the trailing arXiv plots,
/// plus the full paper-scale `15 ≤ s ≤ 400` variants the sparse-LU
/// revised engine makes tractable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FigureId {
    /// Figure 9 — homogeneous platforms, percentage of success.
    Fig9HomogeneousSuccess,
    /// Figure 10 — homogeneous platforms, relative cost.
    Fig10HomogeneousCost,
    /// Figure 11 — heterogeneous platforms, percentage of success.
    Fig11HeterogeneousSuccess,
    /// Figure 12 — heterogeneous platforms, relative cost.
    Fig12HeterogeneousCost,
    /// Extension — homogeneous platforms with a uniform QoS bound.
    QosSweep,
    /// Paper-scale sweep (sizes up to `s = 400`), percentage of success.
    PaperScaleSuccess,
    /// Paper-scale sweep (sizes up to `s = 400`), relative cost.
    PaperScaleCost,
}

impl FigureId {
    /// All reproduced figures.
    pub const ALL: [FigureId; 7] = [
        FigureId::Fig9HomogeneousSuccess,
        FigureId::Fig10HomogeneousCost,
        FigureId::Fig11HeterogeneousSuccess,
        FigureId::Fig12HeterogeneousCost,
        FigureId::QosSweep,
        FigureId::PaperScaleSuccess,
        FigureId::PaperScaleCost,
    ];

    /// The standard (scaled-down) figures the `reproduce all` run
    /// regenerates.
    pub const STANDARD: [FigureId; 5] = [
        FigureId::Fig9HomogeneousSuccess,
        FigureId::Fig10HomogeneousCost,
        FigureId::Fig11HeterogeneousSuccess,
        FigureId::Fig12HeterogeneousCost,
        FigureId::QosSweep,
    ];

    /// The full paper-scale variants (`reproduce paper`): the same
    /// success/relative-cost curves, with problem sizes drawn from the
    /// paper's full `15 ≤ s ≤ 400` range on the revised engine.
    pub const PAPER_SCALE: [FigureId; 2] = [FigureId::PaperScaleSuccess, FigureId::PaperScaleCost];

    /// Short identifier used on the command line (`fig9`, `fig10`, …).
    pub fn key(self) -> &'static str {
        match self {
            FigureId::Fig9HomogeneousSuccess => "fig9",
            FigureId::Fig10HomogeneousCost => "fig10",
            FigureId::Fig11HeterogeneousSuccess => "fig11",
            FigureId::Fig12HeterogeneousCost => "fig12",
            FigureId::QosSweep => "qos",
            FigureId::PaperScaleSuccess => "paper-success",
            FigureId::PaperScaleCost => "paper-cost",
        }
    }

    /// Parses a command-line key.
    pub fn from_key(key: &str) -> Option<FigureId> {
        FigureId::ALL.iter().copied().find(|f| f.key() == key)
    }

    /// Human-readable title (matches the paper's captions).
    pub fn title(self) -> &'static str {
        match self {
            FigureId::Fig9HomogeneousSuccess => {
                "Figure 9: Homogeneous case - Percentage of success"
            }
            FigureId::Fig10HomogeneousCost => "Figure 10: Homogeneous case - Relative cost",
            FigureId::Fig11HeterogeneousSuccess => {
                "Figure 11: Heterogeneous case - Percentage of success"
            }
            FigureId::Fig12HeterogeneousCost => "Figure 12: Heterogeneous case - Relative cost",
            FigureId::QosSweep => "Extension: Homogeneous case with QoS=distance bound",
            FigureId::PaperScaleSuccess => "Paper scale (15 <= s <= 400): Percentage of success",
            FigureId::PaperScaleCost => "Paper scale (15 <= s <= 400): Relative cost",
        }
    }

    /// The experiment configuration behind this figure.
    pub fn config(self) -> ExperimentConfig {
        match self {
            FigureId::Fig9HomogeneousSuccess | FigureId::Fig10HomogeneousCost => {
                ExperimentConfig::homogeneous()
            }
            FigureId::Fig11HeterogeneousSuccess | FigureId::Fig12HeterogeneousCost => {
                ExperimentConfig::heterogeneous()
            }
            FigureId::QosSweep => ExperimentConfig {
                qos_hops: Some(3),
                ..ExperimentConfig::homogeneous()
            },
            FigureId::PaperScaleSuccess | FigureId::PaperScaleCost => {
                ExperimentConfig::paper_scale()
            }
        }
    }

    /// Which table of a sweep this figure plots.
    pub fn table(self, results: &SweepResults) -> SeriesTable {
        match self {
            FigureId::Fig9HomogeneousSuccess
            | FigureId::Fig11HeterogeneousSuccess
            | FigureId::QosSweep
            | FigureId::PaperScaleSuccess => success_table(results),
            FigureId::Fig10HomogeneousCost
            | FigureId::Fig12HeterogeneousCost
            | FigureId::PaperScaleCost => relative_cost_table(results),
        }
    }
}

/// The rendered output for one figure.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Which figure this is.
    pub figure: FigureId,
    /// The main data table (success rate or relative cost).
    pub table: SeriesTable,
    /// Problem-size / runtime summary of the underlying sweep.
    pub runtime: SeriesTable,
}

impl FigureReport {
    /// Renders the report as markdown (title + table).
    pub fn to_markdown(&self) -> String {
        format!(
            "## {}\n\n{}\n### Sweep summary\n\n{}",
            self.figure.title(),
            self.table.to_markdown(),
            self.runtime.to_markdown()
        )
    }
}

/// Runs the sweep behind `figure` with its default configuration.
pub fn reproduce_figure(figure: FigureId) -> FigureReport {
    reproduce_figure_with(figure, &figure.config())
}

/// Runs the sweep behind `figure` with an explicit configuration
/// (smaller sizes, different seeds, …).
pub fn reproduce_figure_with(figure: FigureId, config: &ExperimentConfig) -> FigureReport {
    let results = run_sweep(config);
    FigureReport {
        figure,
        table: figure.table(&results),
        runtime: runtime_table(&results),
    }
}

/// Checks the qualitative claims the paper makes about a success-rate
/// sweep; used by integration tests and the `reproduce` binary's
/// self-check mode. Returns a list of violated expectations (empty =
/// every expectation holds).
pub fn check_success_shape(results: &SweepResults) -> Vec<String> {
    let mut violations = Vec::new();
    for batch in &results.batches {
        let lp = batch.lp_success_rate();
        let mg = batch.success_rate(Heuristic::Mg);
        let mb = batch.success_rate(Heuristic::MixedBest);
        // MG (and therefore MixedBest) succeed exactly on the solvable trees.
        if (mg - lp).abs() > 1e-9 {
            violations.push(format!(
                "λ={:.1}: MG success {:.3} differs from LP success {:.3}",
                batch.lambda, mg, lp
            ));
        }
        if (mb - lp).abs() > 1e-9 {
            violations.push(format!(
                "λ={:.1}: MixedBest success {:.3} differs from LP success {:.3}",
                batch.lambda, mb, lp
            ));
        }
        // The Closest heuristics can never succeed on more trees than MG.
        for h in [Heuristic::Ctda, Heuristic::Ctdlf, Heuristic::Cbu] {
            if batch.success_rate(h) > mg + 1e-9 {
                violations.push(format!(
                    "λ={:.1}: {} succeeds more often than MG",
                    batch.lambda, h
                ));
            }
        }
    }
    // The Closest success rate must not increase as λ grows beyond the
    // point where it starts failing (the collapse seen in Figures 9/11).
    // We check the weaker monotone-ish property: the last λ's Closest
    // success is no better than the first λ's.
    if let (Some(first), Some(last)) = (results.batches.first(), results.batches.last()) {
        for h in [Heuristic::Ctda, Heuristic::Cbu] {
            if last.success_rate(h) > first.success_rate(h) + 1e-9 {
                violations.push(format!(
                    "{}: success at λ={:.1} exceeds success at λ={:.1}",
                    h, last.lambda, first.lambda
                ));
            }
        }
    }
    violations
}

/// Checks the qualitative claims about a relative-cost sweep: MixedBest
/// dominates every other heuristic and never exceeds 1.
pub fn check_cost_shape(results: &SweepResults) -> Vec<String> {
    let mut violations = Vec::new();
    for batch in &results.batches {
        let mb = batch.relative_cost(Heuristic::MixedBest);
        if mb > 1.0 + 1e-9 {
            violations.push(format!(
                "λ={:.1}: MixedBest relative cost {:.3} exceeds 1 (bound not a lower bound?)",
                batch.lambda, mb
            ));
        }
        for &h in &results.config.heuristics {
            let rc = batch.relative_cost(h);
            if rc > mb + 1e-9 {
                violations.push(format!(
                    "λ={:.1}: {} relative cost {:.3} exceeds MixedBest {:.3}",
                    batch.lambda, h, rc, mb
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_keys_round_trip() {
        for figure in FigureId::ALL {
            assert_eq!(FigureId::from_key(figure.key()), Some(figure));
            assert!(!figure.title().is_empty());
        }
        assert_eq!(FigureId::from_key("nope"), None);
    }

    #[test]
    fn figure_configs_match_their_platform() {
        use rp_workloads::platform::PlatformKind;
        assert_eq!(
            FigureId::Fig9HomogeneousSuccess.config().platform,
            PlatformKind::default_homogeneous()
        );
        assert_eq!(
            FigureId::Fig12HeterogeneousCost.config().platform,
            PlatformKind::default_heterogeneous()
        );
        assert_eq!(FigureId::QosSweep.config().qos_hops, Some(3));
    }

    #[test]
    fn smoke_reproduction_produces_tables_and_passes_shape_checks() {
        let config = ExperimentConfig::smoke_test();
        let report = reproduce_figure_with(FigureId::Fig9HomogeneousSuccess, &config);
        assert_eq!(report.table.num_rows(), config.lambdas.len());
        assert!(report.to_markdown().contains("Figure 9"));

        let results = run_sweep(&config);
        let success_violations = check_success_shape(&results);
        assert!(
            success_violations.is_empty(),
            "shape violations: {success_violations:?}"
        );
        let cost_violations = check_cost_shape(&results);
        assert!(
            cost_violations.is_empty(),
            "shape violations: {cost_violations:?}"
        );
    }

    #[test]
    fn cost_figures_use_the_relative_cost_table() {
        let config = ExperimentConfig::smoke_test();
        let report = reproduce_figure_with(FigureId::Fig10HomogeneousCost, &config);
        // The cost table has no LP column.
        assert!(!report.table.headers.contains(&"LP".to_string()));
        let report = reproduce_figure_with(FigureId::Fig9HomogeneousSuccess, &config);
        assert!(report.table.headers.contains(&"LP".to_string()));
    }
}
