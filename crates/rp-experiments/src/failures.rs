//! The resilience sweep: survival of the heuristic candidates under
//! sampled single failures.
//!
//! Per trial the sweep generates one paper-scale instance, runs **all
//! nine** heuristic candidates ([`Heuristic::ALL`]) on the healthy
//! platform, samples one failure — a single server crash on even
//! trials, a single link cut on odd ones, both drawn through the seeded
//! generators of [`rp_workloads::failures`] — and pushes every
//! pre-failure placement through
//! [`inject_and_repair`](rp_core::inject_and_repair). Recorded per
//! (trial, heuristic):
//!
//! * whether the repair restored **full** service (survival) or had to
//!   degrade, and the served fraction either way;
//! * the storage-cost delta of a surviving repair versus the
//!   pre-failure placement;
//! * the repair wall-clock (failure application included);
//! * whether the outcome passed its machine check
//!   ([`RepairOutcome::verify`](rp_core::RepairOutcome::verify)) — the
//!   aggregate [`unverified`](HeuristicSummary::unverified) count must
//!   be zero, and the chaos harness asserts exactly that.
//!
//! Every draw derives from the single base seed printed in the rendered
//! report, so any sweep is reproducible from one number.
//! `reproduce failures` renders the summary as a markdown table; the
//! baseline binary records the same numbers in `BENCH_failures.json`.

use std::time::Instant;

use rp_core::{inject_and_repair, FailureEvent, Heuristic};
use rp_workloads::failures::{sample_link_failure, sample_node_failure};
use rp_workloads::platform::{paper_scale_instance_sized, PlatformKind};

use crate::pool::{default_threads, parallel_map};
use crate::report::SeriesTable;

/// Full description of a resilience sweep.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Load factor of the generated instances.
    pub lambda: f64,
    /// Number of (instance, failure) trials.
    pub trials: usize,
    /// Problem size `s = |C| + |N|` of every instance.
    pub problem_size: usize,
    /// Server-capacity family of the generated platforms.
    pub platform: PlatformKind,
    /// Base RNG seed — the one number a report needs to be reproduced.
    pub seed: u64,
    /// Worker threads (`None` = automatic).
    pub threads: Option<usize>,
}

impl ResilienceConfig {
    /// The default chaos sweep: paper-scale instances at moderate load,
    /// 200 sampled single failures.
    pub fn new() -> Self {
        ResilienceConfig {
            lambda: 0.4,
            trials: 200,
            problem_size: rp_workloads::PAPER_SCALE_S,
            platform: PlatformKind::default_heterogeneous(),
            seed: 20070326,
            threads: None,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn smoke_test() -> Self {
        ResilienceConfig {
            lambda: 0.4,
            trials: 6,
            problem_size: 40,
            platform: PlatformKind::default_homogeneous(),
            threads: Some(2),
            ..ResilienceConfig::new()
        }
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig::new()
    }
}

/// One heuristic's fate in one trial.
#[derive(Clone, Debug)]
pub struct HeuristicResilience {
    /// Whether the repair restored full service.
    pub survived: bool,
    /// Fraction of requests served after repair (1.0 when `survived`).
    pub served_fraction: f64,
    /// Pre-failure storage cost of the heuristic's placement.
    pub original_cost: u64,
    /// Post-repair storage cost (of the partial placement when
    /// degraded).
    pub repaired_cost: u64,
    /// Wall-clock of `inject_and_repair` (failure application
    /// included).
    pub repair_seconds: f64,
    /// Whether the outcome passed its machine check. Anything but
    /// `true` is a bug in the repair pipeline.
    pub verified: bool,
}

/// One (instance, failure) trial: the fate of every candidate.
#[derive(Clone, Debug)]
pub struct ResilienceTrial {
    /// Index of the trial (even = node failure, odd = link failure).
    pub trial_index: usize,
    /// The sampled failure.
    pub failure: FailureEvent,
    /// One entry per [`Heuristic::ALL`] candidate; `None` when the
    /// heuristic already failed on the *healthy* instance (so there was
    /// no placement to repair).
    pub per_heuristic: Vec<Option<HeuristicResilience>>,
}

/// Results of a resilience sweep.
#[derive(Clone, Debug)]
pub struct ResilienceResults {
    /// The configuration that produced these results.
    pub config: ResilienceConfig,
    /// One entry per trial, in trial order.
    pub trials: Vec<ResilienceTrial>,
}

/// Aggregated fate of one heuristic across a sweep.
#[derive(Clone, Debug)]
pub struct HeuristicSummary {
    /// The candidate.
    pub heuristic: Heuristic,
    /// Trials in which the heuristic placed the healthy instance (the
    /// denominator of every rate below).
    pub baseline_runs: usize,
    /// Trials in which it failed before any fault was injected.
    pub baseline_failures: usize,
    /// Fraction of baseline runs whose repair restored full service.
    pub survival_rate: f64,
    /// Mean served fraction over baseline runs (degraded included).
    pub mean_served_fraction: f64,
    /// Mean storage-cost delta of *surviving* repairs versus the
    /// pre-failure placement, as a percentage; `None` when nothing
    /// survived.
    pub mean_cost_delta_pct: Option<f64>,
    /// Mean repair wall-clock in milliseconds.
    pub mean_repair_ms: f64,
    /// 99th-percentile repair wall-clock in milliseconds.
    pub p99_repair_ms: f64,
    /// Worst observed repair wall-clock in milliseconds — the exact
    /// maximum, not a percentile estimate.
    pub max_repair_ms: f64,
    /// Outcomes that failed their machine check — must be zero.
    pub unverified: usize,
}

/// Runs the resilience sweep described by `config`, sharding the trials
/// across a worker pool. Each trial is fully determined by the base
/// seed and its index: even trials sample a node failure, odd trials a
/// link failure.
pub fn run_resilience(config: &ResilienceConfig) -> ResilienceResults {
    let indices: Vec<usize> = (0..config.trials).collect();
    let threads = config
        .threads
        .unwrap_or_else(|| default_threads(indices.len()));
    let trials = parallel_map(&indices, threads, |&trial_index| {
        run_resilience_trial(config, trial_index)
    });
    ResilienceResults {
        config: config.clone(),
        trials,
    }
}

/// Runs one (instance, failure) trial of a resilience sweep.
pub fn run_resilience_trial(config: &ResilienceConfig, trial_index: usize) -> ResilienceTrial {
    let _span = rp_obs::span(rp_obs::SpanKind::ResilienceTrial);
    rp_obs::incr(rp_obs::Counter::ExpResilienceTrials);
    let seed = trial_seed(config.seed, trial_index);
    let problem =
        paper_scale_instance_sized(config.problem_size, config.platform, config.lambda, seed);
    let failure = if trial_index.is_multiple_of(2) {
        sample_node_failure(&problem, seed ^ 0xFA11)
    } else {
        sample_link_failure(&problem, seed ^ 0xFA11)
    };
    let events = [failure];
    let per_heuristic = Heuristic::ALL
        .iter()
        .map(|&heuristic| {
            let placement = heuristic.run(&problem)?;
            let original_cost = placement.cost(&problem);
            let policy = heuristic.policy();
            let start = Instant::now();
            let (platform, outcome) = inject_and_repair(&problem, &placement, policy, &events);
            let repair_seconds = start.elapsed().as_secs_f64();
            Some(HeuristicResilience {
                survived: outcome.is_full(),
                served_fraction: outcome.served_fraction(),
                original_cost,
                repaired_cost: outcome.placement().cost(platform.problem()),
                repair_seconds,
                verified: outcome.verify(&platform, policy),
            })
        })
        .collect();
    ResilienceTrial {
        trial_index,
        failure,
        per_heuristic,
    }
}

/// Derives the deterministic per-trial sub-seed (same mixing as the
/// scenario sweeps).
fn trial_seed(base: u64, trial_index: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((trial_index as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
}

impl ResilienceResults {
    /// Aggregates the sweep per heuristic, in [`Heuristic::ALL`] order.
    pub fn summaries(&self) -> Vec<HeuristicSummary> {
        Heuristic::ALL
            .iter()
            .enumerate()
            .map(|(slot, &heuristic)| {
                let runs: Vec<&HeuristicResilience> = self
                    .trials
                    .iter()
                    .filter_map(|t| t.per_heuristic[slot].as_ref())
                    .collect();
                let baseline_runs = runs.len();
                let survived = runs.iter().filter(|r| r.survived).count();
                let deltas: Vec<f64> = runs
                    .iter()
                    .filter(|r| r.survived && r.original_cost > 0)
                    .map(|r| {
                        100.0 * (r.repaired_cost as f64 - r.original_cost as f64)
                            / r.original_cost as f64
                    })
                    .collect();
                let mut repair_ms: Vec<f64> = runs.iter().map(|r| 1e3 * r.repair_seconds).collect();
                repair_ms.sort_by(|a, b| a.total_cmp(b));
                HeuristicSummary {
                    heuristic,
                    baseline_runs,
                    baseline_failures: self.trials.len() - baseline_runs,
                    survival_rate: rate(survived, baseline_runs),
                    mean_served_fraction: mean(runs.iter().map(|r| r.served_fraction))
                        .unwrap_or(0.0),
                    mean_cost_delta_pct: mean(deltas.iter().copied()),
                    mean_repair_ms: mean(repair_ms.iter().copied()).unwrap_or(0.0),
                    p99_repair_ms: rp_obs::nearest_rank(&repair_ms, 0.99),
                    max_repair_ms: repair_ms.last().copied().unwrap_or(0.0),
                    unverified: runs.iter().filter(|r| !r.verified).count(),
                }
            })
            .collect()
    }

    /// Number of (trial, heuristic) outcomes that failed their machine
    /// check, across the whole sweep. Must be zero.
    pub fn total_unverified(&self) -> usize {
        self.summaries().iter().map(|s| s.unverified).sum()
    }
}

fn rate(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        count as f64 / total as f64
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let values: Vec<f64> = values.collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Renders a resilience sweep as a table: one row per heuristic.
pub fn resilience_table(results: &ResilienceResults) -> SeriesTable {
    let headers = vec![
        "heuristic".to_string(),
        "runs".to_string(),
        "base_fail".to_string(),
        "survival".to_string(),
        "served".to_string(),
        "cost_delta_pct".to_string(),
        "mean_ms".to_string(),
        "p99_ms".to_string(),
        "max_ms".to_string(),
        "unverified".to_string(),
    ];
    let rows = results
        .summaries()
        .iter()
        .map(|s| {
            vec![
                s.heuristic.acronym().to_string(),
                s.baseline_runs.to_string(),
                s.baseline_failures.to_string(),
                format!("{:.2}", s.survival_rate),
                format!("{:.3}", s.mean_served_fraction),
                s.mean_cost_delta_pct
                    .map(|d| format!("{d:.1}"))
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.2}", s.mean_repair_ms),
                format!("{:.2}", s.p99_repair_ms),
                format!("{:.2}", s.max_repair_ms),
                s.unverified.to_string(),
            ]
        })
        .collect();
    SeriesTable { headers, rows }
}

/// Renders the full report (title with the reproduction seed + table)
/// for `reproduce failures`.
pub fn resilience_markdown(results: &ResilienceResults) -> String {
    let config = &results.config;
    format!(
        "## Resilience under sampled single failures \
         (s = {}, λ = {:.1}, {} trials, seed = {})\n\n{}",
        config.problem_size,
        config.lambda,
        config.trials,
        config.seed,
        resilience_table(results).to_markdown()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::LinkId;

    #[test]
    fn smoke_sweep_repairs_every_candidate_verifiably() {
        let config = ResilienceConfig::smoke_test();
        let results = run_resilience(&config);
        assert_eq!(results.trials.len(), config.trials);
        assert_eq!(results.total_unverified(), 0);
        for trial in &results.trials {
            assert_eq!(trial.per_heuristic.len(), Heuristic::ALL.len());
            // Even trials sample node failures, odd trials link failures.
            match (trial.trial_index % 2, trial.failure) {
                (0, FailureEvent::ServerCrash(_)) => {}
                (1, FailureEvent::UplinkDown(_)) => {}
                (parity, failure) => panic!("trial parity {parity} drew {failure:?}"),
            }
            for entry in trial.per_heuristic.iter().flatten() {
                assert!(entry.verified);
                assert!((0.0..=1.0).contains(&entry.served_fraction));
                if entry.survived {
                    assert_eq!(entry.served_fraction, 1.0);
                }
                assert!(entry.repair_seconds >= 0.0);
            }
        }
        // MG never misses a feasible healthy instance, so at this tame
        // load some candidate must have actually run.
        let summaries = results.summaries();
        assert_eq!(summaries.len(), Heuristic::ALL.len());
        assert!(summaries.iter().any(|s| s.baseline_runs > 0));
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let config = ResilienceConfig {
            trials: 4,
            ..ResilienceConfig::smoke_test()
        };
        let a = run_resilience(&config);
        let b = run_resilience(&config);
        for (ta, tb) in a.trials.iter().zip(&b.trials) {
            assert_eq!(ta.failure, tb.failure);
            for (ea, eb) in ta.per_heuristic.iter().zip(&tb.per_heuristic) {
                assert_eq!(ea.is_some(), eb.is_some());
                if let (Some(ea), Some(eb)) = (ea, eb) {
                    assert_eq!(ea.survived, eb.survived);
                    assert_eq!(ea.original_cost, eb.original_cost);
                    assert_eq!(ea.repaired_cost, eb.repaired_cost);
                    assert_eq!(ea.served_fraction, eb.served_fraction);
                }
            }
        }
        // A different seed explores different failures.
        let other = run_resilience(&ResilienceConfig {
            seed: config.seed ^ 0xDEAD,
            ..config
        });
        assert!(a
            .trials
            .iter()
            .zip(&other.trials)
            .any(|(x, y)| x.failure != y.failure));
    }

    #[test]
    fn severed_client_uplinks_degrade_rather_than_fail() {
        // Force a specific failure: cut the first client's uplink on a
        // healthy smoke instance and check the single-trial path ends in
        // a verified degraded report for the candidates that placed it.
        let config = ResilienceConfig::smoke_test();
        let seed = trial_seed(config.seed, 0);
        let problem =
            paper_scale_instance_sized(config.problem_size, config.platform, config.lambda, seed);
        let client = problem.tree().client_ids().next().unwrap();
        let events = [FailureEvent::UplinkDown(LinkId::Client(client))];
        let mut exercised = 0;
        for heuristic in Heuristic::ALL {
            let Some(placement) = heuristic.run(&problem) else {
                continue;
            };
            let policy = heuristic.policy();
            let (platform, outcome) = inject_and_repair(&problem, &placement, policy, &events);
            assert!(outcome.verify(&platform, policy), "{heuristic:?}");
            if problem.requests(client) > 0 {
                assert!(!outcome.is_full(), "{heuristic:?}");
                assert!(outcome.served_fraction() < 1.0, "{heuristic:?}");
            }
            exercised += 1;
        }
        assert!(exercised > 0);
    }

    #[test]
    fn table_and_markdown_carry_the_reproduction_seed() {
        let config = ResilienceConfig {
            trials: 2,
            ..ResilienceConfig::smoke_test()
        };
        let results = run_resilience(&config);
        let table = resilience_table(&results);
        assert_eq!(table.num_rows(), Heuristic::ALL.len());
        assert!(table.headers.contains(&"survival".to_string()));
        assert!(table.headers.contains(&"max_ms".to_string()));
        for summary in results.summaries() {
            // The exact max tops every percentile estimate.
            assert!(summary.max_repair_ms >= summary.p99_repair_ms);
        }
        let markdown = resilience_markdown(&results);
        assert!(markdown.contains(&format!("seed = {}", config.seed)));
        assert!(markdown.contains("MB"));
    }

    #[test]
    fn percentile_uses_the_shared_nearest_rank() {
        // The summary's p99 routes through the workspace-wide
        // implementation in rp-obs; pin the rule here too.
        assert_eq!(rp_obs::nearest_rank(&[], 0.99), 0.0);
        assert_eq!(rp_obs::nearest_rank(&[5.0], 0.99), 5.0);
        let sorted: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(rp_obs::nearest_rank(&sorted, 0.99), 99.0);
        assert_eq!(rp_obs::nearest_rank(&sorted, 0.5), 50.0);
        assert_eq!(rp_obs::nearest_rank(&sorted, 1.0), 100.0);
    }
}
