//! Per-trial measurements and the paper's aggregate metrics.
//!
//! Section 7.2 defines two quantities, both reported per load factor λ:
//!
//! * the **percentage of success** — the fraction of generated trees on
//!   which a heuristic finds a valid solution (the LP row indicates
//!   which trees are solvable at all);
//! * the **relative cost** — `rcost = (1/|T_λ|) Σ_t cost_LP(t) / cost_h(t)`,
//!   where `T_λ` is the set of solvable trees, `cost_LP` the LP lower
//!   bound and `cost_h(t) = +∞` (contribution 0) when the heuristic
//!   found no solution. Higher is better; 1.0 would mean matching the
//!   lower bound everywhere.

use rp_core::Heuristic;

/// Everything measured on one generated tree.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Index of the tree within its λ batch.
    pub tree_index: usize,
    /// Problem size `s = |C| + |N|`.
    pub problem_size: usize,
    /// Load factor actually achieved by the generator.
    pub achieved_lambda: f64,
    /// LP lower bound on the replica cost (`None` when the LP itself is
    /// infeasible, i.e. the tree is not solvable under any policy).
    pub lp_bound: Option<f64>,
    /// Cost found by each heuristic (`None` = no valid solution).
    pub heuristic_costs: Vec<(Heuristic, Option<u64>)>,
    /// Wall-clock seconds spent on the LP bound.
    pub lp_seconds: f64,
    /// Wall-clock seconds spent running all heuristics.
    pub heuristics_seconds: f64,
}

impl TrialResult {
    /// The cost found by `heuristic` on this trial, if any.
    pub fn cost_of(&self, heuristic: Heuristic) -> Option<u64> {
        self.heuristic_costs
            .iter()
            .find(|(h, _)| *h == heuristic)
            .and_then(|(_, c)| *c)
    }

    /// `true` when the LP declared the tree solvable.
    pub fn solvable(&self) -> bool {
        self.lp_bound.is_some()
    }
}

/// All trials of one load factor.
#[derive(Clone, Debug)]
pub struct LambdaBatch {
    /// The target load factor λ.
    pub lambda: f64,
    /// One entry per generated tree.
    pub trials: Vec<TrialResult>,
}

impl LambdaBatch {
    /// Fraction of trees on which `heuristic` found a valid solution
    /// (over *all* generated trees, matching Figure 9/11 where the LP
    /// curve is itself below 1.0 for large λ).
    pub fn success_rate(&self, heuristic: Heuristic) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let successes = self
            .trials
            .iter()
            .filter(|t| t.cost_of(heuristic).is_some())
            .count();
        successes as f64 / self.trials.len() as f64
    }

    /// Fraction of trees the LP declared solvable.
    pub fn lp_success_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let successes = self.trials.iter().filter(|t| t.solvable()).count();
        successes as f64 / self.trials.len() as f64
    }

    /// The paper's relative cost for `heuristic` (Section 7.2): average
    /// of `lp_bound / heuristic_cost` over the solvable trees, counting
    /// 0 whenever the heuristic failed.
    pub fn relative_cost(&self, heuristic: Heuristic) -> f64 {
        let solvable: Vec<&TrialResult> = self.trials.iter().filter(|t| t.solvable()).collect();
        if solvable.is_empty() {
            return 0.0;
        }
        let total: f64 = solvable
            .iter()
            .map(|t| {
                let bound = t.lp_bound.expect("filtered on solvable");
                match t.cost_of(heuristic) {
                    Some(cost) if cost > 0 => bound / cost as f64,
                    Some(_) => 1.0, // zero-cost optimum matched exactly
                    None => 0.0,
                }
            })
            .sum();
        total / solvable.len() as f64
    }

    /// Mean problem size of the batch (for reporting).
    pub fn mean_problem_size(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials
            .iter()
            .map(|t| t.problem_size as f64)
            .sum::<f64>()
            / self.trials.len() as f64
    }

    /// Total wall-clock seconds spent on this batch.
    pub fn total_seconds(&self) -> f64 {
        self.trials
            .iter()
            .map(|t| t.lp_seconds + t.heuristics_seconds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(lp: Option<f64>, mg: Option<u64>, cbu: Option<u64>) -> TrialResult {
        TrialResult {
            tree_index: 0,
            problem_size: 30,
            achieved_lambda: 0.5,
            lp_bound: lp,
            heuristic_costs: vec![(Heuristic::Mg, mg), (Heuristic::Cbu, cbu)],
            lp_seconds: 0.0,
            heuristics_seconds: 0.0,
        }
    }

    #[test]
    fn success_rates_count_failures() {
        let batch = LambdaBatch {
            lambda: 0.5,
            trials: vec![
                trial(Some(10.0), Some(12), Some(20)),
                trial(Some(8.0), Some(9), None),
                trial(None, None, None),
            ],
        };
        assert!((batch.success_rate(Heuristic::Mg) - 2.0 / 3.0).abs() < 1e-12);
        assert!((batch.success_rate(Heuristic::Cbu) - 1.0 / 3.0).abs() < 1e-12);
        assert!((batch.lp_success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn relative_cost_matches_the_paper_definition() {
        let batch = LambdaBatch {
            lambda: 0.5,
            trials: vec![
                trial(Some(10.0), Some(12), Some(20)), // MG: 10/12, CBU: 10/20
                trial(Some(8.0), Some(9), None),       // MG: 8/9,  CBU: 0
                trial(None, None, None),               // excluded (not solvable)
            ],
        };
        let mg = batch.relative_cost(Heuristic::Mg);
        let cbu = batch.relative_cost(Heuristic::Cbu);
        assert!((mg - (10.0 / 12.0 + 8.0 / 9.0) / 2.0).abs() < 1e-12);
        assert!((cbu - (10.0 / 20.0 + 0.0) / 2.0).abs() < 1e-12);
        assert!(mg > cbu);
    }

    #[test]
    fn empty_batches_report_zero() {
        let batch = LambdaBatch {
            lambda: 0.1,
            trials: vec![],
        };
        assert_eq!(batch.success_rate(Heuristic::Mg), 0.0);
        assert_eq!(batch.lp_success_rate(), 0.0);
        assert_eq!(batch.relative_cost(Heuristic::Mg), 0.0);
        assert_eq!(batch.mean_problem_size(), 0.0);
    }

    #[test]
    fn relative_cost_never_exceeds_one_for_valid_bounds() {
        // The LP value is a lower bound, so each term is <= 1.
        let batch = LambdaBatch {
            lambda: 0.3,
            trials: vec![trial(Some(10.0), Some(10), Some(11))],
        };
        assert!(batch.relative_cost(Heuristic::Mg) <= 1.0 + 1e-12);
        assert!(batch.relative_cost(Heuristic::Cbu) <= 1.0 + 1e-12);
    }

    #[test]
    fn trial_accessors() {
        let t = trial(Some(5.0), Some(7), None);
        assert_eq!(t.cost_of(Heuristic::Mg), Some(7));
        assert_eq!(t.cost_of(Heuristic::Cbu), None);
        assert_eq!(t.cost_of(Heuristic::Utd), None);
        assert!(t.solvable());
    }
}
