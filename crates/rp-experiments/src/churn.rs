//! The churn sweep: sustained online re-placement under a seeded
//! delta stream.
//!
//! One run drives a [`PlacementEngine`] per policy through the same
//! churn trace ([`rp_workloads::churn_trace`]): arrivals, departures,
//! demand drift, failures and paired recoveries, each applied under a
//! per-delta [`SolveBudget`]. Recorded per policy:
//!
//! * outcome mix — applied / degraded / deferred — and which ladder
//!   rung answered each absorbed delta ([`RungCounts`]);
//! * sustained **re-placements per second** and the p50/p99 apply
//!   latency (wall-clock around [`PlacementEngine::apply`], also
//!   visible as the `online.apply_us` histogram through `rp-obs`);
//! * incumbent verification after **every** apply — the engine runs at
//!   [`Paranoia::Full`] and the aggregate
//!   [`unverified`](ChurnPolicyOutcome::unverified) count must be
//!   zero, which the chaos harness and `--smoke-online` assert.
//!
//! `reproduce churn` renders the summary as a markdown table; the
//! baseline binary records the same numbers in `BENCH_online.json`.

use std::time::{Duration, Instant};

use rp_core::Policy;
use rp_lp::SolveBudget;
use rp_online::{ApplyOutcome, Paranoia, PlacementEngine, RungCounts};
use rp_workloads::churn::{churn_trace, ChurnConfig};
use rp_workloads::platform::{paper_scale_instance_sized, PlatformKind};

use crate::pool::parallel_map;
use crate::report::SeriesTable;

/// Full description of a churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnRunConfig {
    /// Load factor of the generated instance.
    pub lambda: f64,
    /// Number of deltas driven through each engine.
    pub deltas: usize,
    /// Problem size `s = |C| + |N|` of the instance.
    pub problem_size: usize,
    /// Server-capacity family of the generated platform.
    pub platform: PlatformKind,
    /// Per-delta wall budget in milliseconds (`None` = unlimited).
    pub budget_ms: Option<u64>,
    /// Rate-curve and event-mix parameters of the trace.
    pub trace: ChurnConfig,
    /// Base RNG seed — the one number a report needs to be reproduced.
    pub seed: u64,
    /// Worker threads across policies (`None` = one per policy).
    pub threads: Option<usize>,
}

impl ChurnRunConfig {
    /// The default churn sweep: a paper-scale instance at moderate
    /// load, 2000 mixed deltas, 50 ms per delta.
    pub fn new() -> Self {
        ChurnRunConfig {
            lambda: 0.4,
            deltas: 2000,
            problem_size: rp_workloads::PAPER_SCALE_S,
            platform: PlatformKind::default_heterogeneous(),
            budget_ms: Some(50),
            trace: ChurnConfig::new(),
            seed: 20070326,
            threads: None,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn smoke_test() -> Self {
        ChurnRunConfig {
            deltas: 40,
            problem_size: 40,
            platform: PlatformKind::default_homogeneous(),
            threads: Some(1),
            ..ChurnRunConfig::new()
        }
    }
}

impl Default for ChurnRunConfig {
    fn default() -> Self {
        ChurnRunConfig::new()
    }
}

/// One policy's fate across the whole delta stream.
#[derive(Clone, Debug)]
pub struct ChurnPolicyOutcome {
    /// The policy the engine served under.
    pub policy: Policy,
    /// Deltas absorbed with full service.
    pub applied: usize,
    /// Deltas absorbed with a verified degraded incumbent.
    pub degraded: usize,
    /// Deltas deferred (budget missed, rolled back and re-queued).
    pub deferred: usize,
    /// Which ladder rung answered each absorbed apply.
    pub rungs: RungCounts,
    /// Incumbents that failed verification after an apply — anything
    /// but zero is a bug in the engine.
    pub unverified: usize,
    /// The engine's final incumbent generation.
    pub final_generation: u64,
    /// Absorbed re-placements per wall-clock second.
    pub replacements_per_sec: f64,
    /// Median apply latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile apply latency in milliseconds.
    pub p99_ms: f64,
    /// Worst observed apply latency in milliseconds — the exact
    /// maximum, not a percentile estimate.
    pub max_ms: f64,
    /// Mean apply latency in milliseconds.
    pub mean_ms: f64,
}

/// Results of a churn sweep: one outcome per policy, in
/// [`Policy::ALL`] order, all driven by the same trace.
#[derive(Clone, Debug)]
pub struct ChurnResults {
    /// The configuration that produced these results.
    pub config: ChurnRunConfig,
    /// One entry per policy.
    pub per_policy: Vec<ChurnPolicyOutcome>,
}

impl ChurnResults {
    /// Total incumbents that failed verification across every policy.
    /// Must be zero.
    pub fn total_unverified(&self) -> usize {
        self.per_policy.iter().map(|p| p.unverified).sum()
    }
}

/// Runs the churn sweep described by `config`: the same seeded trace
/// through one engine per policy.
pub fn run_churn(config: &ChurnRunConfig) -> ChurnResults {
    let policies: Vec<Policy> = Policy::ALL.to_vec();
    let threads = config.threads.unwrap_or(policies.len()).max(1);
    let per_policy = parallel_map(&policies, threads, |&policy| {
        run_churn_policy(config, policy)
    });
    ChurnResults {
        config: config.clone(),
        per_policy,
    }
}

/// Drives one engine under `policy` through the configured trace.
pub fn run_churn_policy(config: &ChurnRunConfig, policy: Policy) -> ChurnPolicyOutcome {
    rp_obs::incr(rp_obs::Counter::ExpChurnTrials);
    let problem = paper_scale_instance_sized(
        config.problem_size,
        config.platform,
        config.lambda,
        config.seed,
    );
    let trace = churn_trace(&problem, &config.trace, config.deltas, config.seed ^ 0xC4A0);
    let budget = match config.budget_ms {
        Some(ms) => SolveBudget::with_deadline(Duration::from_millis(ms)),
        None => SolveBudget::UNLIMITED,
    };

    let mut engine = PlacementEngine::new(problem, policy).with_paranoia(Paranoia::Full);
    let mut applied = 0usize;
    let mut degraded = 0usize;
    let mut deferred = 0usize;
    let mut unverified = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(trace.len());
    let wall = Instant::now();
    for entry in &trace {
        let start = Instant::now();
        let outcome = engine.apply(entry.delta, budget);
        latencies_ms.push(1e3 * start.elapsed().as_secs_f64());
        match outcome {
            ApplyOutcome::Applied { .. } => applied += 1,
            ApplyOutcome::Degraded { .. } => degraded += 1,
            ApplyOutcome::Deferred => deferred += 1,
        }
        if !engine.verify_incumbent() {
            unverified += 1;
        }
    }
    let wall_seconds = wall.elapsed().as_secs_f64().max(1e-12);
    let absorbed = applied + degraded;
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };
    ChurnPolicyOutcome {
        policy,
        applied,
        degraded,
        deferred,
        rungs: engine.rung_counts(),
        unverified,
        final_generation: engine.generation(),
        replacements_per_sec: absorbed as f64 / wall_seconds,
        p50_ms: rp_obs::nearest_rank(&latencies_ms, 0.50),
        p99_ms: rp_obs::nearest_rank(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        mean_ms,
    }
}

/// Renders a churn sweep as a table: one row per policy.
pub fn churn_table(results: &ChurnResults) -> SeriesTable {
    let headers = vec![
        "policy".to_string(),
        "applied".to_string(),
        "degraded".to_string(),
        "deferred".to_string(),
        "surgical".to_string(),
        "lp_repair".to_string(),
        "rerun".to_string(),
        "rung_degraded".to_string(),
        "repl_per_s".to_string(),
        "p50_ms".to_string(),
        "p99_ms".to_string(),
        "max_ms".to_string(),
        "unverified".to_string(),
    ];
    let rows = results
        .per_policy
        .iter()
        .map(|p| {
            vec![
                p.policy.to_string(),
                p.applied.to_string(),
                p.degraded.to_string(),
                p.deferred.to_string(),
                p.rungs.surgical.to_string(),
                p.rungs.lp_repair.to_string(),
                p.rungs.rerun.to_string(),
                p.rungs.degraded.to_string(),
                format!("{:.0}", p.replacements_per_sec),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.3}", p.max_ms),
                p.unverified.to_string(),
            ]
        })
        .collect();
    SeriesTable { headers, rows }
}

/// Renders the full report (title with the reproduction seed + table)
/// for `reproduce churn`.
pub fn churn_markdown(results: &ChurnResults) -> String {
    let config = &results.config;
    let budget = config
        .budget_ms
        .map(|ms| format!("{ms} ms"))
        .unwrap_or_else(|| "unlimited".to_string());
    format!(
        "## Online churn: {} deltas per policy \
         (s = {}, λ = {:.1}, budget = {}, seed = {})\n\n{}",
        config.deltas,
        config.problem_size,
        config.lambda,
        budget,
        config.seed,
        churn_table(results).to_markdown()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_keeps_every_incumbent_verified() {
        let config = ChurnRunConfig::smoke_test();
        let results = run_churn(&config);
        assert_eq!(results.per_policy.len(), Policy::ALL.len());
        assert_eq!(results.total_unverified(), 0);
        for outcome in &results.per_policy {
            assert_eq!(
                outcome.applied + outcome.degraded + outcome.deferred,
                config.deltas
            );
            assert_eq!(
                outcome.rungs.total(),
                (outcome.applied + outcome.degraded) as u64
            );
            assert_eq!(outcome.final_generation, outcome.rungs.total());
            assert!(outcome.replacements_per_sec > 0.0);
            assert!(outcome.p99_ms >= outcome.p50_ms);
            // The exact max tops every percentile estimate.
            assert!(outcome.max_ms >= outcome.p99_ms);
        }
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let config = ChurnRunConfig {
            deltas: 25,
            // Unlimited budget: outcomes cannot depend on wall-clock.
            budget_ms: None,
            ..ChurnRunConfig::smoke_test()
        };
        let a = run_churn(&config);
        let b = run_churn(&config);
        for (x, y) in a.per_policy.iter().zip(&b.per_policy) {
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.applied, y.applied);
            assert_eq!(x.degraded, y.degraded);
            assert_eq!(x.final_generation, y.final_generation);
            assert_eq!(x.rungs, y.rungs);
        }
    }

    #[test]
    fn table_and_markdown_carry_the_reproduction_seed() {
        let config = ChurnRunConfig {
            deltas: 10,
            ..ChurnRunConfig::smoke_test()
        };
        let results = run_churn(&config);
        let table = churn_table(&results);
        assert_eq!(table.num_rows(), Policy::ALL.len());
        assert!(table.headers.contains(&"repl_per_s".to_string()));
        let markdown = churn_markdown(&results);
        assert!(markdown.contains(&format!("seed = {}", config.seed)));
    }
}
