//! Ablation studies of the reproduction's own design choices.
//!
//! The paper's figures aggregate the eight heuristics into one plot per
//! metric; the tables here isolate the ingredients this reproduction had
//! to choose (and that a user of the library may want to reconsider):
//!
//! * **policy families** — how much of MixedBest's quality comes from
//!   the Closest, Upwards and Multiple heuristics respectively;
//! * **lower bound** — how much tighter the mixed bound (integral `x_j`)
//!   is than the rational relaxation, measured on the same instances;
//! * **tree shape** — how sensitive the headline metrics are to the
//!   random-tree family used by the generator (the paper leaves its
//!   generator unspecified).

use rp_core::ilp::{integral_lower_bound, lower_bound, BoundKind};
use rp_core::Heuristic;

use crate::metrics::TrialResult;
use crate::report::SeriesTable;
use crate::runner::{generate_trial_problem, run_sweep, ExperimentConfig, SweepResults};

/// Best cost achieved by a set of heuristics on one trial, if any.
fn best_cost(trial: &TrialResult, heuristics: &[Heuristic]) -> Option<u64> {
    heuristics.iter().filter_map(|&h| trial.cost_of(h)).min()
}

/// Relative cost of "the best heuristic of a family" per λ, mirroring the
/// paper's `rcost` definition (failures contribute 0 over solvable trees).
fn family_relative_cost(results: &SweepResults, family: &[Heuristic]) -> Vec<f64> {
    results
        .batches
        .iter()
        .map(|batch| {
            let solvable: Vec<&TrialResult> =
                batch.trials.iter().filter(|t| t.solvable()).collect();
            if solvable.is_empty() {
                return 0.0;
            }
            let total: f64 = solvable
                .iter()
                .map(|trial| {
                    let bound = trial.lp_bound.expect("filtered on solvable");
                    match best_cost(trial, family) {
                        Some(cost) if cost > 0 => bound / cost as f64,
                        Some(_) => 1.0,
                        None => 0.0,
                    }
                })
                .sum();
            total / solvable.len() as f64
        })
        .collect()
}

/// Per-λ relative cost of the best heuristic within each policy family,
/// next to MixedBest. Shows which family MixedBest actually relies on at
/// each load level.
pub fn policy_family_ablation(results: &SweepResults) -> SeriesTable {
    let closest = [Heuristic::Ctda, Heuristic::Ctdlf, Heuristic::Cbu];
    let upwards = [Heuristic::Utd, Heuristic::Ubcf];
    let multiple = [Heuristic::Mtd, Heuristic::Mbu, Heuristic::Mg];

    let closest_costs = family_relative_cost(results, &closest);
    let upwards_costs = family_relative_cost(results, &upwards);
    let multiple_costs = family_relative_cost(results, &multiple);
    let all_costs = family_relative_cost(results, &Heuristic::BASE);

    let headers = vec![
        "lambda".to_string(),
        "best_closest".to_string(),
        "best_upwards".to_string(),
        "best_multiple".to_string(),
        "mixed_best".to_string(),
    ];
    let rows = results
        .batches
        .iter()
        .enumerate()
        .map(|(i, batch)| {
            vec![
                format!("{:.1}", batch.lambda),
                format!("{:.3}", closest_costs[i]),
                format!("{:.3}", upwards_costs[i]),
                format!("{:.3}", multiple_costs[i]),
                format!("{:.3}", all_costs[i]),
            ]
        })
        .collect();
    SeriesTable { headers, rows }
}

/// Compares the rational and mixed lower bounds on the very same
/// instances: per λ, the mean ratio `rational / mixed` (1.0 would mean
/// the cheap bound is already as tight as the paper's refined one).
/// Runs on a reduced number of trees because the mixed bound is
/// expensive with the bundled branch-and-bound.
pub fn bound_tightness_ablation(config: &ExperimentConfig, trees: usize) -> SeriesTable {
    let headers = vec![
        "lambda".to_string(),
        "trees".to_string(),
        "mean_rational".to_string(),
        "mean_mixed".to_string(),
        "mean_ratio".to_string(),
    ];
    let mut rows = Vec::new();
    for &lambda in &config.lambdas {
        let mut rational_sum = 0.0;
        let mut mixed_sum = 0.0;
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        for tree_index in 0..trees {
            let problem = generate_trial_problem(config, lambda, tree_index);
            let rational =
                lower_bound(&problem, BoundKind::Rational).map(|b| integral_lower_bound(b) as f64);
            let mixed =
                lower_bound(&problem, BoundKind::Mixed).map(|b| integral_lower_bound(b) as f64);
            if let (Some(rational), Some(mixed)) = (rational, mixed) {
                if mixed > 0.0 {
                    rational_sum += rational;
                    mixed_sum += mixed;
                    ratio_sum += rational / mixed;
                    count += 1;
                }
            }
        }
        if count == 0 {
            rows.push(vec![
                format!("{lambda:.1}"),
                "0".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        } else {
            rows.push(vec![
                format!("{lambda:.1}"),
                count.to_string(),
                format!("{:.2}", rational_sum / count as f64),
                format!("{:.2}", mixed_sum / count as f64),
                format!("{:.3}", ratio_sum / count as f64),
            ]);
        }
    }
    SeriesTable { headers, rows }
}

/// Runs the same sweep under each tree-shape family and reports, per
/// shape, the LP success rate and MixedBest relative cost at a fixed λ.
pub fn tree_shape_ablation(base: &ExperimentConfig, lambda: f64) -> SeriesTable {
    use rp_workloads::tree_gen::TreeShape;
    let shapes: [(&str, TreeShape); 4] = [
        ("random_attachment", TreeShape::RandomAttachment),
        (
            "bounded_degree_3",
            TreeShape::BoundedDegree { max_children: 3 },
        ),
        ("linear", TreeShape::Linear),
        ("balanced_binary", TreeShape::Balanced { arity: 2 }),
    ];
    let headers = vec![
        "shape".to_string(),
        "lp_success".to_string(),
        "mixed_best_rcost".to_string(),
        "closest_success".to_string(),
    ];
    let mut rows = Vec::new();
    for (name, shape) in shapes {
        let config = ExperimentConfig {
            lambdas: vec![lambda],
            shape,
            ..base.clone()
        };
        let results = run_sweep(&config);
        let batch = &results.batches[0];
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", batch.lp_success_rate()),
            format!("{:.3}", batch.relative_cost(Heuristic::MixedBest)),
            format!("{:.3}", batch.success_rate(Heuristic::Cbu)),
        ]);
    }
    SeriesTable { headers, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            lambdas: vec![0.3, 0.7],
            trees_per_lambda: 4,
            size_range: (12, 20),
            ..ExperimentConfig::smoke_test()
        }
    }

    #[test]
    fn policy_family_ablation_is_bounded_by_mixed_best() {
        let results = run_sweep(&tiny_config());
        let table = policy_family_ablation(&results);
        assert_eq!(table.headers.len(), 5);
        for row in &table.rows {
            let best_family = row[1..4]
                .iter()
                .map(|v| v.parse::<f64>().unwrap())
                .fold(0.0f64, f64::max);
            let mixed: f64 = row[4].parse().unwrap();
            // MixedBest is the max over the families (same trials, same
            // bound), so it can never be lower.
            assert!(mixed + 1e-9 >= best_family, "row {row:?}");
        }
    }

    #[test]
    fn bound_tightness_ratio_never_exceeds_one() {
        let config = tiny_config();
        let table = bound_tightness_ablation(&config, 2);
        assert_eq!(table.rows.len(), config.lambdas.len());
        for row in &table.rows {
            if row[4] == "-" {
                continue;
            }
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                ratio <= 1.0 + 1e-9,
                "rational bound tighter than mixed? {row:?}"
            );
            assert!(ratio > 0.0);
        }
    }

    #[test]
    fn tree_shape_ablation_covers_all_shapes() {
        let table = tree_shape_ablation(&tiny_config(), 0.3);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            let success: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&success));
        }
    }
}
