//! The experiment runner: generate trees, run every heuristic, compute
//! the LP lower bound, aggregate per load factor.
//!
//! This reproduces the experimental plan of Section 7.2: a set of load
//! factors λ, a number of random trees per λ, and for each tree the
//! per-heuristic cost plus an LP-based lower bound.
//!
//! # Parallel execution model
//!
//! The sweep is sharded across **all** (λ, tree) pairs at once — not
//! per-λ batch — through one shared work queue, so slow λ values never
//! leave workers idle. Every worker thread pins one [`WorkerScratch`]:
//! the `HeuristicState` buffers and pooled `MixedBest` incumbent, the
//! LP workspace of the selected [`LpEngine`], and the previous trial's
//! retired tree (recycled into the next tree's derived arrays). The
//! allocation-free steady state of the solvers therefore holds under
//! the parallel runner as well: after warm-up, a worker's trial
//! allocates only the tree/problem value vectors themselves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rp_core::heuristics::{HeuristicState, StateBuffers};
use rp_core::ilp::{integral_lower_bound, lower_bound_reusing, BoundKind, IlpOptions};
use rp_core::{Heuristic, MixedBest, ProblemInstance};
use rp_lp::{LpEngine, LpWorkspace};
use rp_tree::TreeNetwork;
use rp_workloads::platform::{generate_problem_split_rng, PlatformKind, WorkloadConfig};
use rp_workloads::tree_gen::{generate_tree_into_with_rng, TreeGenConfig, TreeShape};

use crate::metrics::{LambdaBatch, TrialResult};
use crate::pool::{default_threads, parallel_map_with};

/// Full description of a sweep.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Load factors to evaluate (the paper uses 0.1, 0.2, …, 0.9).
    pub lambdas: Vec<f64>,
    /// Number of random trees per load factor (the paper uses 30).
    pub trees_per_lambda: usize,
    /// Problem sizes are drawn uniformly from this inclusive range.
    pub size_range: (usize, usize),
    /// Tree shape family.
    pub shape: TreeShape,
    /// Server capacity model.
    pub platform: PlatformKind,
    /// Optional uniform QoS bound in hops.
    pub qos_hops: Option<u32>,
    /// Which LP relaxation provides the lower bound.
    pub bound: BoundKind,
    /// Which LP engine solves it (revised simplex by default; the dense
    /// tableau remains available as the differential oracle).
    pub engine: LpEngine,
    /// Base RNG seed; every (λ, tree) pair derives its own sub-seed.
    pub seed: u64,
    /// Worker threads (`None` = automatic).
    pub threads: Option<usize>,
    /// Heuristics to evaluate.
    pub heuristics: Vec<Heuristic>,
}

impl ExperimentConfig {
    /// The paper's λ grid: 0.1, 0.2, …, 0.9.
    pub fn paper_lambdas() -> Vec<f64> {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    }

    /// The default homogeneous sweep (Figures 9 and 10), scaled to sizes
    /// that the bundled LP solver handles comfortably. The paper uses
    /// 15 ≤ s ≤ 400; see EXPERIMENTS.md for the size discussion.
    pub fn homogeneous() -> Self {
        ExperimentConfig {
            lambdas: Self::paper_lambdas(),
            trees_per_lambda: 30,
            size_range: (15, 150),
            shape: TreeShape::RandomAttachment,
            platform: PlatformKind::default_homogeneous(),
            qos_hops: None,
            bound: BoundKind::Rational,
            engine: LpEngine::default(),
            seed: 20070326, // IPPS 2007 kick-off date, for flavour
            threads: None,
            heuristics: Heuristic::ALL.to_vec(),
        }
    }

    /// The default heterogeneous sweep (Figures 11 and 12).
    pub fn heterogeneous() -> Self {
        ExperimentConfig {
            platform: PlatformKind::default_heterogeneous(),
            ..Self::homogeneous()
        }
    }

    /// The full **paper-scale** sweep: problem sizes up to the paper's
    /// `s = 400` (Section 7.2). Tractable only with the revised-simplex
    /// engine — the dense tableau's bound rows make the `s = 400` LP
    /// bound an order of magnitude slower.
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            size_range: (15, rp_workloads::PAPER_SCALE_S),
            engine: LpEngine::Revised,
            ..Self::homogeneous()
        }
    }

    /// A miniature configuration for unit tests and smoke benches.
    pub fn smoke_test() -> Self {
        ExperimentConfig {
            lambdas: vec![0.2, 0.6],
            trees_per_lambda: 4,
            size_range: (12, 24),
            shape: TreeShape::RandomAttachment,
            platform: PlatformKind::default_homogeneous(),
            qos_hops: None,
            bound: BoundKind::Rational,
            engine: LpEngine::default(),
            seed: 7,
            threads: Some(2),
            heuristics: Heuristic::ALL.to_vec(),
        }
    }
}

/// Results of a full sweep: one batch per load factor.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// The configuration that produced these results.
    pub config: ExperimentConfig,
    /// One batch per λ, in the order of `config.lambdas`.
    pub batches: Vec<LambdaBatch>,
}

/// The per-worker pinned state of the sweep: one allocation set per
/// thread, reused across every trial the worker claims (see the module
/// docs). Create one with [`WorkerScratch::new`] for sequential use, or
/// let [`run_sweep`] pin one per worker.
#[derive(Default)]
pub struct WorkerScratch {
    /// The single shared heuristic buffer set: the base heuristics and
    /// the MixedBest sweep all run on it.
    buffers: StateBuffers,
    /// Pooled MixedBest incumbent (its sweeps borrow `buffers`).
    mixed_best: MixedBest,
    /// LP workspaces of both engines (factorisation, tableau, scratch).
    lp: LpWorkspace,
    /// The previous trial's tree, recycled into the next generation.
    recycled_tree: Option<TreeNetwork>,
}

impl WorkerScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        WorkerScratch::default()
    }
}

/// Runs the full sweep described by `config`, sharding all (λ, tree)
/// pairs across one worker pool.
pub fn run_sweep(config: &ExperimentConfig) -> SweepResults {
    // Flatten every (λ index, tree index) pair into one work list so
    // the λ shards interleave; results are regrouped afterwards (the
    // queue preserves input order in its output). The list is
    // tree-major: all λ values of one tree are adjacent, so a worker
    // claiming consecutive items re-solves the same constraint matrix
    // under different load factors — exactly the sibling pattern the LP
    // workspace warm-starts across (see `generate_trial_problem`).
    let pairs: Vec<(usize, usize)> = (0..config.trees_per_lambda)
        .flat_map(|ti| (0..config.lambdas.len()).map(move |li| (li, ti)))
        .collect();
    let threads = config
        .threads
        .unwrap_or_else(|| default_threads(pairs.len()));
    let trials = parallel_map_with(
        &pairs,
        threads,
        WorkerScratch::new,
        |&(lambda_index, tree_index), scratch| {
            run_single_trial_with(config, config.lambdas[lambda_index], tree_index, scratch)
        },
    );

    let mut batches: Vec<LambdaBatch> = config
        .lambdas
        .iter()
        .map(|&lambda| LambdaBatch {
            lambda,
            trials: Vec::with_capacity(config.trees_per_lambda),
        })
        .collect();
    for (&(lambda_index, _), trial) in pairs.iter().zip(trials) {
        batches[lambda_index].trials.push(trial);
    }
    SweepResults {
        config: config.clone(),
        batches,
    }
}

/// Runs all the trees of a single load factor, in parallel.
pub fn run_lambda_batch(config: &ExperimentConfig, lambda: f64) -> LambdaBatch {
    let indices: Vec<usize> = (0..config.trees_per_lambda).collect();
    let threads = config
        .threads
        .unwrap_or_else(|| default_threads(indices.len()));
    let trials = parallel_map_with(
        &indices,
        threads,
        WorkerScratch::new,
        |&tree_index, scratch| run_single_trial_with(config, lambda, tree_index, scratch),
    );
    LambdaBatch { lambda, trials }
}

/// Generates and evaluates one tree with throwaway scratch state.
pub fn run_single_trial(config: &ExperimentConfig, lambda: f64, tree_index: usize) -> TrialResult {
    run_single_trial_with(config, lambda, tree_index, &mut WorkerScratch::new())
}

/// Generates and evaluates one tree on a worker's pinned scratch state.
pub fn run_single_trial_with(
    config: &ExperimentConfig,
    lambda: f64,
    tree_index: usize,
    scratch: &mut WorkerScratch,
) -> TrialResult {
    let _trial_span = rp_obs::span(rp_obs::SpanKind::Trial);
    rp_obs::incr(rp_obs::Counter::ExpTrials);
    let problem =
        generate_trial_problem_reusing(config, lambda, tree_index, scratch.recycled_tree.take());

    let heuristics_span = rp_obs::timed_span(rp_obs::SpanKind::HeuristicsPhase);
    let heuristic_costs: Vec<(Heuristic, Option<u64>)> = config
        .heuristics
        .iter()
        .map(|&h| {
            let cost = match h {
                // The MixedBest sweep borrows the same buffer set the
                // single heuristics use: one allocation pool per worker.
                Heuristic::MixedBest => scratch
                    .mixed_best
                    .full_sweep_reusing(&problem, &mut scratch.buffers)
                    .map(|placement| {
                        debug_assert!(placement.is_valid(&problem, h.policy()));
                        placement.cost(&problem)
                    }),
                base => {
                    let mut state = HeuristicState::with_buffers(
                        &problem,
                        std::mem::take(&mut scratch.buffers),
                    );
                    let served = base.run_with(&mut state);
                    let cost = if served {
                        debug_assert!(state.placement().is_valid(&problem, h.policy()));
                        Some(state.current_cost())
                    } else {
                        None
                    };
                    scratch.buffers = state.into_buffers();
                    cost
                }
            };
            (h, cost)
        })
        .collect();
    let heuristics_seconds = heuristics_span.finish_seconds();

    let lp_span = rp_obs::timed_span(rp_obs::SpanKind::LpBound);
    let mut ilp_options = IlpOptions::default();
    ilp_options.branch_bound.engine = config.engine;
    // Storage costs are integral, so the bound can always be rounded up
    // to the next integer; this markedly tightens the fully rational
    // relaxation on Replica Counting instances.
    let lp_bound = lower_bound_reusing(&problem, config.bound, &ilp_options, &mut scratch.lp)
        .map(|raw| integral_lower_bound(raw) as f64);
    let lp_seconds = lp_span.finish_seconds();

    let result = TrialResult {
        tree_index,
        problem_size: problem.tree().problem_size(),
        achieved_lambda: problem.load_factor(),
        lp_bound,
        heuristic_costs,
        lp_seconds,
        heuristics_seconds,
    };

    // Retire the tree into the scratch so the next trial's generation
    // reuses its derived arrays (only possible once the problem — the
    // other Arc holder — is dropped).
    let tree = problem.tree_arc();
    drop(problem);
    scratch.recycled_tree = std::sync::Arc::try_unwrap(tree).ok();
    result
}

/// Generates the problem instance for one (λ, tree index) pair. Exposed
/// so benchmarks can time the solvers on exactly the trees the sweep
/// uses.
pub fn generate_trial_problem(
    config: &ExperimentConfig,
    lambda: f64,
    tree_index: usize,
) -> ProblemInstance {
    generate_trial_problem_reusing(config, lambda, tree_index, None)
}

/// [`generate_trial_problem`], recycling a previous tree's derived
/// arrays into the generated tree.
///
/// The generation is **λ-independent in structure**: the tree, its
/// size and the platform capacities are drawn from a stream keyed to
/// `tree_index` alone, while the request distribution comes from a
/// stream keyed to the (λ, `tree_index`) pair. Sibling trials — one
/// tree under several load factors — therefore share their entire ILP
/// constraint matrix (only right-hand sides, variable bounds and the
/// load-dependent data differ), which is what lets the pinned worker's
/// LP workspace warm-start across them instead of re-solving cold.
pub fn generate_trial_problem_reusing(
    config: &ExperimentConfig,
    lambda: f64,
    tree_index: usize,
    recycled: Option<TreeNetwork>,
) -> ProblemInstance {
    let mut structure_rng = StdRng::seed_from_u64(trial_seed(config.seed, 0.0, tree_index));
    let size = structure_rng.gen_range(config.size_range.0..=config.size_range.1);
    let tree = generate_tree_into_with_rng(
        &TreeGenConfig::with_problem_size(size, config.shape),
        &mut structure_rng,
        recycled,
    );
    let workload = WorkloadConfig {
        platform: config.platform,
        lambda,
        qos_hops: config.qos_hops,
    };
    let mut demand_rng = StdRng::seed_from_u64(trial_seed(config.seed, lambda, tree_index));
    generate_problem_split_rng(tree, &workload, &mut structure_rng, &mut demand_rng)
}

/// Derives a deterministic sub-seed for one trial.
fn trial_seed(base: u64, lambda: f64, tree_index: usize) -> u64 {
    // Mix with two large odd constants (splitmix-style) so that nearby
    // (λ, index) pairs get unrelated streams.
    let lambda_bits = (lambda * 1000.0).round() as u64;
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lambda_bits.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((tree_index as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_core::Policy;

    #[test]
    fn smoke_sweep_produces_consistent_batches() {
        let config = ExperimentConfig::smoke_test();
        let results = run_sweep(&config);
        assert_eq!(results.batches.len(), config.lambdas.len());
        for (batch, &lambda) in results.batches.iter().zip(&config.lambdas) {
            assert_eq!(batch.lambda, lambda);
            assert_eq!(batch.trials.len(), config.trees_per_lambda);
            for trial in &batch.trials {
                assert!(trial.problem_size >= config.size_range.0);
                assert!(trial.problem_size <= config.size_range.1);
                // Achieved λ tracks the target.
                assert!((trial.achieved_lambda - lambda).abs() < 0.1);
            }
        }
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let config = ExperimentConfig::smoke_test();
        let a = run_sweep(&config);
        let b = run_sweep(&config);
        for (ba, bb) in a.batches.iter().zip(&b.batches) {
            for (ta, tb) in ba.trials.iter().zip(&bb.trials) {
                assert_eq!(ta.problem_size, tb.problem_size);
                assert_eq!(ta.heuristic_costs, tb.heuristic_costs);
                assert_eq!(
                    ta.lp_bound.map(|v| (v * 1e6).round()),
                    tb.lp_bound.map(|v| (v * 1e6).round())
                );
            }
        }
    }

    #[test]
    fn sharded_sweep_matches_per_batch_and_per_trial_runs() {
        // The λ-sharded pool with pinned worker state must agree with
        // the one-λ-at-a-time path and with isolated per-trial runs.
        let config = ExperimentConfig {
            threads: Some(3),
            ..ExperimentConfig::smoke_test()
        };
        let sharded = run_sweep(&config);
        for (batch, &lambda) in sharded.batches.iter().zip(&config.lambdas) {
            let solo_batch = run_lambda_batch(&config, lambda);
            for (trial, solo) in batch.trials.iter().zip(&solo_batch.trials) {
                assert_eq!(trial.heuristic_costs, solo.heuristic_costs);
                assert_eq!(trial.lp_bound, solo.lp_bound);
                let isolated = run_single_trial(&config, lambda, trial.tree_index);
                assert_eq!(trial.heuristic_costs, isolated.heuristic_costs);
                assert_eq!(trial.lp_bound, isolated.lp_bound);
            }
        }
    }

    #[test]
    fn dense_and_revised_engines_agree_on_the_smoke_sweep() {
        let revised = run_sweep(&ExperimentConfig {
            engine: LpEngine::Revised,
            ..ExperimentConfig::smoke_test()
        });
        let dense = run_sweep(&ExperimentConfig {
            engine: LpEngine::DenseTableau,
            ..ExperimentConfig::smoke_test()
        });
        for (br, bd) in revised.batches.iter().zip(&dense.batches) {
            for (tr, td) in br.trials.iter().zip(&bd.trials) {
                assert_eq!(
                    tr.lp_bound, td.lp_bound,
                    "λ={} tree {}",
                    br.lambda, tr.tree_index
                );
                assert_eq!(tr.heuristic_costs, td.heuristic_costs);
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_any_heuristic_cost() {
        let config = ExperimentConfig::smoke_test();
        let results = run_sweep(&config);
        for batch in &results.batches {
            for trial in &batch.trials {
                if let Some(bound) = trial.lp_bound {
                    for (h, cost) in &trial.heuristic_costs {
                        if let Some(cost) = cost {
                            assert!(
                                bound <= *cost as f64 + 1e-6,
                                "λ={} tree {}: bound {bound} > {h} cost {cost}",
                                batch.lambda,
                                trial.tree_index
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mg_succeeds_exactly_when_the_lp_is_feasible() {
        let config = ExperimentConfig::smoke_test();
        let results = run_sweep(&config);
        for batch in &results.batches {
            for trial in &batch.trials {
                assert_eq!(
                    trial.solvable(),
                    trial.cost_of(Heuristic::Mg).is_some(),
                    "λ={} tree {}",
                    batch.lambda,
                    trial.tree_index
                );
            }
        }
    }

    #[test]
    fn generated_trial_problems_match_the_platform_kind() {
        let config = ExperimentConfig {
            platform: PlatformKind::default_heterogeneous(),
            ..ExperimentConfig::smoke_test()
        };
        let p = generate_trial_problem(&config, 0.4, 0);
        assert_eq!(p.kind(), rp_core::ProblemKind::ReplicaCost);
        let placement = Heuristic::Mg.run(&p);
        if let Some(placement) = placement {
            assert!(placement.is_valid(&p, Policy::Multiple));
        }
    }

    #[test]
    fn sibling_trials_share_structure_but_not_demand() {
        // One tree index under two load factors: same tree, same
        // capacities, same storage costs — the constraint matrix the LP
        // warm start relies on — but a λ-dependent request vector.
        let config = ExperimentConfig {
            platform: PlatformKind::default_heterogeneous(),
            ..ExperimentConfig::smoke_test()
        };
        let low = generate_trial_problem(&config, 0.2, 3);
        let high = generate_trial_problem(&config, 0.6, 3);
        assert_eq!(low.tree().problem_size(), high.tree().problem_size());
        assert_eq!(low.tree().num_nodes(), high.tree().num_nodes());
        let nodes: Vec<_> = low.tree().node_ids().collect();
        for &node in &nodes {
            assert_eq!(low.capacity(node), high.capacity(node), "{node}");
            assert_eq!(low.storage_cost(node), high.storage_cost(node), "{node}");
        }
        let low_total: u64 = low.tree().client_ids().map(|c| low.requests(c)).sum();
        let high_total: u64 = high.tree().client_ids().map(|c| high.requests(c)).sum();
        assert!(
            high_total > low_total,
            "λ=0.6 should demand more than λ=0.2 ({high_total} vs {low_total})"
        );
    }

    #[test]
    fn paper_scale_config_reaches_s_400() {
        let config = ExperimentConfig::paper_scale();
        assert_eq!(config.size_range.1, 400);
        assert_eq!(config.engine, LpEngine::Revised);
    }

    #[test]
    fn trial_seeds_differ_across_lambdas_and_indices() {
        let s1 = trial_seed(1, 0.1, 0);
        let s2 = trial_seed(1, 0.2, 0);
        let s3 = trial_seed(1, 0.1, 1);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
    }
}
