//! A small fork-join helper built on `std::thread::scope`.
//!
//! The experiment sweeps are embarrassingly parallel (one unit of work
//! per generated tree), so a simple shared-counter work queue over
//! scoped threads is all that is needed — no external thread-pool crate,
//! no unsafe code, results returned in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped so tiny jobs do not spawn dozens of threads.
pub fn default_threads(work_items: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hardware.min(work_items.max(1)).max(1)
}

/// Applies `f` to every item, in parallel over `threads` workers, and
/// returns the results in input order.
///
/// Items are handed out through a shared atomic counter, so long and
/// short work items mix freely without static partitioning imbalance.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let value = f(&items[index]);
                *results[index].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed by some worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let results = parallel_map(&items, 8, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(results.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let items = vec![1, 2, 3];
        let results = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x * 3), vec![21]);
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn unbalanced_work_is_still_completed() {
        // Items with very different costs: the shared counter must keep
        // all workers busy and produce every result.
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map(&items, 4, |&x| {
            let mut acc = 0u64;
            let rounds = if x % 7 == 0 { 50_000 } else { 10 };
            for i in 0..rounds {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(results.len(), 64);
    }
}
