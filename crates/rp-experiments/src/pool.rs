//! A small fork-join helper built on `std::thread::scope`.
//!
//! The experiment sweeps are embarrassingly parallel (one unit of work
//! per generated tree), so a simple shared-counter work queue over
//! scoped threads is all that is needed — no external thread-pool crate,
//! no unsafe code, results returned in input order.
//!
//! [`parallel_map_with`] additionally pins **one worker-local state**
//! per thread (created by a caller factory when the worker starts and
//! dropped when the queue drains). The sweep harness uses it to give
//! every worker its own `HeuristicState` buffers, LP workspace and
//! recycled tree, so the allocation-free steady state of the solvers
//! also holds under the parallel runner — λ shards and trees mix freely
//! in one queue without any shared mutable solver state.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped so tiny jobs do not spawn dozens of threads.
pub fn default_threads(work_items: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hardware.min(work_items.max(1)).max(1)
}

/// Applies `f` to every item, in parallel over `threads` workers, and
/// returns the results in input order.
///
/// Items are handed out through a shared atomic counter, so long and
/// short work items mix freely without static partitioning imbalance.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), |item, ()| f(item))
}

/// [`parallel_map`] with a per-worker pinned state: `init` runs once on
/// each worker thread (and once inline for the sequential fallback),
/// and `f` receives a mutable reference to that worker's state for
/// every item it processes.
///
/// The state lives as long as the worker, so buffers placed inside it
/// (heuristic scratch, LP workspaces, recycled trees) are reused across
/// every item the worker claims — the parallel counterpart of holding
/// one workspace across a sequential loop.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(item, &mut state)).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let value = f(&items[index], &mut state);
                    *results[index].lock().expect("result slot poisoned") = Some(value);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed by some worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let results = parallel_map(&items, 8, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(results.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let items = vec![1, 2, 3];
        let results = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], 4, |&x| x * 3), vec![21]);
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn worker_state_is_pinned_per_thread_and_reused() {
        // Each worker's state counts the items it processed; the total
        // across workers must cover every item exactly once, and with a
        // single thread the one state must see every item.
        let items: Vec<u32> = (0..200).collect();
        let processed = AtomicU64::new(0);
        let results = parallel_map_with(
            &items,
            4,
            || 0u64,
            |&x, seen| {
                *seen += 1;
                processed.fetch_add(1, Ordering::Relaxed);
                (x, *seen)
            },
        );
        assert_eq!(results.len(), 200);
        assert_eq!(processed.load(Ordering::Relaxed), 200);
        // `seen` grows within a worker: at least one worker processed
        // more than one item, proving the state persisted across items.
        assert!(results.iter().any(|&(_, seen)| seen > 1));

        let sequential = parallel_map_with(
            &items,
            1,
            || 0u64,
            |&x, seen| {
                *seen += 1;
                (x, *seen)
            },
        );
        // Single worker: the running count is exactly the 1-based index.
        for (i, &(_, seen)) in sequential.iter().enumerate() {
            assert_eq!(seen, i as u64 + 1);
        }
    }

    #[test]
    fn unbalanced_work_is_still_completed() {
        // Items with very different costs: the shared counter must keep
        // all workers busy and produce every result.
        let items: Vec<u64> = (0..64).collect();
        let results = parallel_map(&items, 4, |&x| {
            let mut acc = 0u64;
            let rounds = if x % 7 == 0 { 50_000 } else { 10 };
            for i in 0..rounds {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(results.len(), 64);
    }
}
