//! # rp-experiments — the paper's evaluation harness
//!
//! Reproduces the experimental study of Section 7: per-λ sweeps over
//! randomly generated trees, running the eight heuristics (plus
//! MixedBest) on every tree and comparing their costs against the
//! LP-based lower bound.
//!
//! * [`runner`] — sweep configuration and execution (parallel over trees);
//! * [`metrics`] — success rates and the paper's `rcost` relative cost;
//! * [`report`] — CSV / markdown rendering of the per-λ series;
//! * [`figures`] — one driver per reproduced figure (9–12 plus the QoS
//!   extension), with shape checks for the paper's qualitative claims;
//! * [`failures`] — the resilience sweep: survival, degradation and
//!   repair-latency statistics of every heuristic candidate under
//!   sampled single-node / single-link failures;
//! * [`pool`] — a minimal scoped-thread fork-join helper.
//!
//! ```
//! use rp_experiments::figures::{reproduce_figure_with, FigureId};
//! use rp_experiments::runner::ExperimentConfig;
//!
//! // A tiny sweep (4 trees for 2 values of λ) purely for illustration;
//! // the real figures use ExperimentConfig::homogeneous().
//! let config = ExperimentConfig::smoke_test();
//! let report = reproduce_figure_with(FigureId::Fig9HomogeneousSuccess, &config);
//! assert_eq!(report.table.num_rows(), config.lambdas.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Predates the workspace ban on panicking accessors (see clippy.toml);
// new long-lived code (rp-online, rp-obs) enforces it.
#![allow(clippy::disallowed_methods)]

pub mod ablations;
pub mod churn;
pub mod failures;
pub mod figures;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod runner;
pub mod scenarios;

pub use churn::{
    churn_markdown, churn_table, run_churn, ChurnPolicyOutcome, ChurnResults, ChurnRunConfig,
};
pub use failures::{
    resilience_markdown, resilience_table, run_resilience, HeuristicSummary, ResilienceConfig,
    ResilienceResults,
};
pub use figures::{reproduce_figure, reproduce_figure_with, FigureId, FigureReport};
pub use metrics::{LambdaBatch, TrialResult};
pub use report::{relative_cost_table, success_table, SeriesTable};
pub use runner::{run_sweep, ExperimentConfig, SweepResults};
pub use scenarios::{
    run_scenario, scenario_markdown, scenario_table, ScenarioConfig, ScenarioFamily,
    ScenarioResults,
};
