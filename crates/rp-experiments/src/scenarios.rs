//! The scenario sweep: λ-parameterised LP lower bounds **and heuristic
//! success/cost series** over the bandwidth-constrained and
//! multi-object workload families.
//!
//! The classic figure sweeps ([`crate::runner`]) evaluate heuristics
//! against the LP bound on the base formulation. The problem-variant
//! families are covered here: per (λ, tree) the sweep records the
//! rational LP bound (wall-clock, iteration count and — on the
//! ill-scaled families — the equilibration's entry-spread reduction)
//! **plus two heuristic candidates**:
//!
//! * the **LP-guided rounding** ([`rp_core::heuristics::lp_guided`]) —
//!   the subsystem built for exactly these families (bandwidth-aware,
//!   multi-object-aware);
//! * the **classic ensemble** — on single-object families the best of
//!   the paper's eight heuristics behind the [`BandwidthRepair`]
//!   retrofit; on multi-object families the sequential greedy
//!   ([`rp_core::multi::solve_multi_greedy`]), validated against the
//!   shared capacities *and* links.
//!
//! The rendered tables therefore carry real success-rate and
//! cost-vs-LP-gap columns for every family (a `-` appears only when a
//! metric is inapplicable — e.g. the gap of a λ batch in which no
//! relaxation was feasible). One `LpWorkspace` is pinned per worker and
//! the work list is tree-major, so sibling λ trials of one tree
//! re-solve the same constraint matrix through the warm-start path,
//! exactly like the main sweep — and the LP-guided rounding's own
//! solve rides the same warm workspace.
//!
//! `reproduce bandwidth` / `reproduce multi` render these sweeps as
//! markdown tables; the baseline binary records the same numbers in
//! `BENCH_scenarios.json` / `BENCH_heuristics.json`.

use rp_core::heuristics::lp_guided::{lp_guided_multi_reusing, lp_guided_reusing, BandwidthRepair};
use rp_core::ilp::{build_model, build_multi_model, IlpOptions, Integrality};
use rp_core::multi::{solve_multi_greedy, MultiGreedyOptions, MultiObjectProblem};
use rp_core::{Heuristic, Policy, ProblemInstance};
use rp_lp::{solve_lp_engine, LpEngine, LpWorkspace, SimplexOptions, Status};
use rp_workloads::scenarios::{
    bandwidth_instance, ill_scaled_bandwidth_instance, multi_object_bandwidth_instance,
    multi_object_instance,
};

use crate::pool::{default_threads, parallel_map_with};
use crate::report::SeriesTable;

/// Which problem-variant family a scenario sweep draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioFamily {
    /// Single-object instances with per-link bandwidth bounds at mixed
    /// headroom (some links bind; feasibility is λ-dependent).
    Bandwidth,
    /// Bandwidth bounds over the wide-range (five-decade) platform: the
    /// ill-scaled regime that triggers the LP equilibration pass.
    BandwidthIllScaled,
    /// Multi-object instances sharing node capacities.
    MultiObject,
    /// Multi-object instances sharing node capacities **and** links
    /// (per-object `z` variables, shared bandwidth rows).
    MultiObjectBandwidth,
}

impl ScenarioFamily {
    /// Command-line key (`reproduce <key>` accepts the family keys).
    pub fn key(self) -> &'static str {
        match self {
            ScenarioFamily::Bandwidth => "bandwidth",
            ScenarioFamily::BandwidthIllScaled => "bandwidth-ill",
            ScenarioFamily::MultiObject => "multi",
            ScenarioFamily::MultiObjectBandwidth => "multi-bandwidth",
        }
    }

    /// Parses a command-line key.
    pub fn from_key(key: &str) -> Option<ScenarioFamily> {
        [
            ScenarioFamily::Bandwidth,
            ScenarioFamily::BandwidthIllScaled,
            ScenarioFamily::MultiObject,
            ScenarioFamily::MultiObjectBandwidth,
        ]
        .into_iter()
        .find(|f| f.key() == key)
    }

    /// Human-readable title for the rendered report.
    pub fn title(self) -> &'static str {
        match self {
            ScenarioFamily::Bandwidth => "Bandwidth-constrained LP bound (mixed headroom links)",
            ScenarioFamily::BandwidthIllScaled => {
                "Ill-scaled bandwidth LP bound (wide-range platform, equilibrated)"
            }
            ScenarioFamily::MultiObject => "Multi-object LP bound (shared capacities)",
            ScenarioFamily::MultiObjectBandwidth => {
                "Multi-object LP bound (shared capacities and links)"
            }
        }
    }
}

/// Full description of a scenario sweep.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// The workload family.
    pub family: ScenarioFamily,
    /// Load factors to evaluate.
    pub lambdas: Vec<f64>,
    /// Random trees per load factor.
    pub trees_per_lambda: usize,
    /// Problem size `s = |C| + |N|` of every instance.
    pub problem_size: usize,
    /// Object types (multi-object families only).
    pub num_objects: usize,
    /// The LP engine solving the relaxations.
    pub engine: LpEngine,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (`None` = automatic).
    pub threads: Option<usize>,
}

impl ScenarioConfig {
    /// The default sweep of a family: the paper's λ grid at a size the
    /// revised engine bounds in milliseconds.
    pub fn new(family: ScenarioFamily) -> Self {
        ScenarioConfig {
            family,
            lambdas: crate::runner::ExperimentConfig::paper_lambdas(),
            trees_per_lambda: 8,
            problem_size: 150,
            num_objects: 3,
            engine: LpEngine::Revised,
            seed: 20070326,
            threads: None,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn smoke_test(family: ScenarioFamily) -> Self {
        ScenarioConfig {
            lambdas: vec![0.3, 0.7],
            trees_per_lambda: 3,
            problem_size: 30,
            num_objects: 2,
            threads: Some(2),
            ..ScenarioConfig::new(family)
        }
    }
}

/// One (λ, tree) trial of a scenario sweep.
#[derive(Clone, Debug)]
pub struct ScenarioTrial {
    /// Index of the tree within its λ batch.
    pub tree_index: usize,
    /// Solver status of the relaxation. Distinguishes a genuinely
    /// infeasible instance from a truncated (`IterationLimit`) solve —
    /// the latter would otherwise masquerade as infeasibility in the
    /// tables.
    pub status: Status,
    /// The rational LP bound, `None` unless the solve reached
    /// optimality (see `status` for why).
    pub bound: Option<f64>,
    /// Wall-clock of the bound solve (model build excluded).
    pub solve_seconds: f64,
    /// Simplex iterations of the solve (revised engine only; 0 on the
    /// dense oracle).
    pub iterations: usize,
    /// Rows (constraints) of the solved model.
    pub rows: usize,
    /// Columns of the solved model.
    pub cols: usize,
    /// Entry-spread before/after equilibration, when the pass ran.
    pub scaling_spread: Option<(f64, f64)>,
    /// Cost of the LP-guided rounding (`None` = no feasible placement
    /// found — always the case when the relaxation is infeasible).
    pub lp_guided_cost: Option<u64>,
    /// Cost of the classic ensemble: best bandwidth-repaired Section 6
    /// heuristic on single-object families, the validated sequential
    /// greedy on multi-object families.
    pub classic_cost: Option<u64>,
    /// Wall-clock of both heuristic runs together.
    pub heuristics_seconds: f64,
}

/// All trials of one load factor.
#[derive(Clone, Debug)]
pub struct ScenarioBatch {
    /// The load factor.
    pub lambda: f64,
    /// One entry per tree.
    pub trials: Vec<ScenarioTrial>,
}

impl ScenarioBatch {
    /// Fraction of trees whose relaxation solved to optimality (check
    /// [`ScenarioBatch::truncated_count`] to tell genuine
    /// infeasibility apart from solver truncation).
    pub fn feasible_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| t.bound.is_some()).count() as f64 / self.trials.len() as f64
    }

    /// Number of trials that ended without a definitive verdict
    /// (iteration limit or another non-optimal, non-infeasible status).
    pub fn truncated_count(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| !matches!(t.status, Status::Optimal | Status::Infeasible))
            .count()
    }

    /// Mean bound over the feasible trees.
    pub fn mean_bound(&self) -> Option<f64> {
        let feasible: Vec<f64> = self.trials.iter().filter_map(|t| t.bound).collect();
        if feasible.is_empty() {
            None
        } else {
            Some(feasible.iter().sum::<f64>() / feasible.len() as f64)
        }
    }

    /// Mean solve wall-clock in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        1e3 * self.trials.iter().map(|t| t.solve_seconds).sum::<f64>() / self.trials.len() as f64
    }

    /// Mean simplex iterations.
    pub fn mean_iterations(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(|t| t.iterations).sum::<usize>() as f64 / self.trials.len() as f64
    }

    /// Mean rows × columns of the batch's models (the random trees of
    /// one batch differ in path lengths, so their flow-row counts —
    /// and therefore model sizes — differ too).
    pub fn mean_shape(&self) -> (f64, f64) {
        if self.trials.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.trials.len() as f64;
        (
            self.trials.iter().map(|t| t.rows).sum::<usize>() as f64 / n,
            self.trials.iter().map(|t| t.cols).sum::<usize>() as f64 / n,
        )
    }

    /// Fraction of trials the equilibration pass scaled.
    pub fn scaled_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials
            .iter()
            .filter(|t| t.scaling_spread.is_some())
            .count() as f64
            / self.trials.len() as f64
    }

    /// Success rate of the LP-guided rounding over **all** trials of
    /// the batch (matching the classic figures, where the LP curve
    /// itself shows what was solvable at all).
    pub fn lp_guided_success_rate(&self) -> f64 {
        self.success_rate_of(|t| t.lp_guided_cost)
    }

    /// Success rate of the classic ensemble over all trials.
    pub fn classic_success_rate(&self) -> f64 {
        self.success_rate_of(|t| t.classic_cost)
    }

    /// Mean cost-vs-LP gap of the LP-guided rounding, as a fraction
    /// (`cost / bound − 1`, averaged over the trials where both exist).
    /// `None` when no trial has both a bound and a rounded cost.
    pub fn lp_guided_gap(&self) -> Option<f64> {
        self.mean_gap_of(|t| t.lp_guided_cost)
    }

    /// Mean cost-vs-LP gap of the classic ensemble.
    pub fn classic_gap(&self) -> Option<f64> {
        self.mean_gap_of(|t| t.classic_cost)
    }

    /// Mean heuristic wall-clock in milliseconds.
    pub fn mean_heuristics_ms(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        1e3 * self
            .trials
            .iter()
            .map(|t| t.heuristics_seconds)
            .sum::<f64>()
            / self.trials.len() as f64
    }

    fn success_rate_of(&self, cost: impl Fn(&ScenarioTrial) -> Option<u64>) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| cost(t).is_some()).count() as f64 / self.trials.len() as f64
    }

    fn mean_gap_of(&self, cost: impl Fn(&ScenarioTrial) -> Option<u64>) -> Option<f64> {
        let gaps: Vec<f64> = self
            .trials
            .iter()
            .filter_map(|t| match (t.bound, cost(t)) {
                (Some(bound), Some(cost)) if bound > 0.0 => Some(cost as f64 / bound - 1.0),
                _ => None,
            })
            .collect();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
        }
    }
}

/// Results of a scenario sweep: one batch per load factor.
#[derive(Clone, Debug)]
pub struct ScenarioResults {
    /// The configuration that produced these results.
    pub config: ScenarioConfig,
    /// One batch per λ, in the order of `config.lambdas`.
    pub batches: Vec<ScenarioBatch>,
}

/// Runs the scenario sweep described by `config`, sharding the
/// **trees** across one worker pool with a pinned LP workspace per
/// worker. A work item is one tree with *all* its λ values: the worker
/// that claims a tree solves its sibling trials back to back on one
/// workspace, so every λ after the first re-solves the same constraint
/// matrix through the warm-start path (an interleaved (λ, tree) queue
/// would scatter the siblings across workers and quietly cold-solve
/// them all).
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResults {
    let trees: Vec<usize> = (0..config.trees_per_lambda).collect();
    let threads = config
        .threads
        .unwrap_or_else(|| default_threads(trees.len()));
    let per_tree: Vec<Vec<ScenarioTrial>> = parallel_map_with(
        &trees,
        threads,
        LpWorkspace::new,
        |&tree_index, workspace| {
            config
                .lambdas
                .iter()
                .map(|&lambda| run_scenario_trial(config, lambda, tree_index, workspace))
                .collect()
        },
    );
    let mut batches: Vec<ScenarioBatch> = config
        .lambdas
        .iter()
        .map(|&lambda| ScenarioBatch {
            lambda,
            trials: Vec::with_capacity(config.trees_per_lambda),
        })
        .collect();
    for tree_trials in per_tree {
        for (lambda_index, trial) in tree_trials.into_iter().enumerate() {
            batches[lambda_index].trials.push(trial);
        }
    }
    ScenarioResults {
        config: config.clone(),
        batches,
    }
}

/// Runs one (λ, tree) trial on a caller-provided LP workspace: the LP
/// bound first (the warm sibling path), then the two heuristic
/// candidates on the same workspace.
pub fn run_scenario_trial(
    config: &ScenarioConfig,
    lambda: f64,
    tree_index: usize,
    workspace: &mut LpWorkspace,
) -> ScenarioTrial {
    let _span = rp_obs::span(rp_obs::SpanKind::Trial);
    rp_obs::incr(rp_obs::Counter::ExpScenarioTrials);
    let seed = trial_seed(config.seed, tree_index);
    match config.family {
        ScenarioFamily::Bandwidth => {
            let problem = bandwidth_instance(config.problem_size, lambda, seed);
            single_object_trial(config, &problem, tree_index, workspace)
        }
        ScenarioFamily::BandwidthIllScaled => {
            let problem = ill_scaled_bandwidth_instance(config.problem_size, lambda, seed);
            single_object_trial(config, &problem, tree_index, workspace)
        }
        ScenarioFamily::MultiObject => {
            let problem =
                multi_object_instance(config.problem_size, config.num_objects, lambda, seed);
            multi_object_trial(config, &problem, tree_index, workspace)
        }
        ScenarioFamily::MultiObjectBandwidth => {
            let problem = multi_object_bandwidth_instance(
                config.problem_size,
                config.num_objects,
                lambda,
                seed,
            );
            multi_object_trial(config, &problem, tree_index, workspace)
        }
    }
}

/// The bound solve shared by both trial shapes.
fn solve_bound(
    model: &rp_lp::Model,
    config: &ScenarioConfig,
    tree_index: usize,
    workspace: &mut LpWorkspace,
) -> ScenarioTrial {
    let options = SimplexOptions::default();
    let span = rp_obs::timed_span(rp_obs::SpanKind::LpBound);
    let solution = solve_lp_engine(model, config.engine, &options, workspace);
    let solve_seconds = span.finish_seconds();
    let (iterations, scaling_spread) = match config.engine {
        LpEngine::Revised => (
            workspace.revised.last_stats().iterations(),
            workspace.revised.scaling_spread(),
        ),
        LpEngine::DenseTableau => (0, None),
    };
    ScenarioTrial {
        tree_index,
        status: solution.status,
        bound: (solution.status == Status::Optimal).then_some(solution.objective),
        solve_seconds,
        iterations,
        rows: model.num_constraints(),
        cols: model.num_vars(),
        scaling_spread,
        lp_guided_cost: None,
        classic_cost: None,
        heuristics_seconds: 0.0,
    }
}

fn single_object_trial(
    config: &ScenarioConfig,
    problem: &ProblemInstance,
    tree_index: usize,
    workspace: &mut LpWorkspace,
) -> ScenarioTrial {
    let model = build_model(problem, Policy::Multiple, Integrality::RationalBound).model;
    let mut trial = solve_bound(&model, config, tree_index, workspace);

    let ilp_options = IlpOptions::with_engine(config.engine);
    let span = rp_obs::timed_span(rp_obs::SpanKind::HeuristicsPhase);
    // Classic ensemble: best of the eight, bandwidth-repaired.
    trial.classic_cost = Heuristic::BASE
        .iter()
        .filter_map(|&h| BandwidthRepair(h).run(problem).map(|p| p.cost(problem)))
        .min();
    // LP-guided rounding (re-solves the same matrix on the warm path).
    trial.lp_guided_cost =
        lp_guided_reusing(problem, &ilp_options, workspace).map(|p| p.cost(problem));
    trial.heuristics_seconds = span.finish_seconds();
    trial
}

fn multi_object_trial(
    config: &ScenarioConfig,
    problem: &MultiObjectProblem,
    tree_index: usize,
    workspace: &mut LpWorkspace,
) -> ScenarioTrial {
    let model = build_multi_model(problem, Integrality::RationalBound).model;
    let mut trial = solve_bound(&model, config, tree_index, workspace);

    let ilp_options = IlpOptions::with_engine(config.engine);
    let span = rp_obs::timed_span(rp_obs::SpanKind::HeuristicsPhase);
    // Classic ensemble: the sequential greedy, kept only when its
    // placement also fits the shared links (the greedy itself is
    // capacity-only).
    trial.classic_cost = solve_multi_greedy(problem, &MultiGreedyOptions::default())
        .filter(|p| p.is_valid(problem, Policy::Multiple))
        .map(|p| p.cost(problem));
    trial.lp_guided_cost =
        lp_guided_multi_reusing(problem, &ilp_options, workspace).map(|p| p.cost(problem));
    trial.heuristics_seconds = span.finish_seconds();
    trial
}

/// Derives a deterministic per-tree sub-seed. λ is deliberately *not*
/// mixed in: sibling λ trials of one tree share their tree, platform
/// and link-headroom draws (only the demand scales with λ), which keeps
/// their constraint matrices identical and the warm-start path hot.
fn trial_seed(base: u64, tree_index: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((tree_index as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// Renders a scenario sweep as a table: one row per λ, with real
/// success-rate and cost-vs-LP-gap columns for both heuristic
/// candidates (`lpg_*` = LP-guided rounding, `cls_*` = classic
/// ensemble). A `-` appears only where a metric is inapplicable — the
/// gap of a batch in which no trial produced both a bound and a cost.
pub fn scenario_table(results: &ScenarioResults) -> SeriesTable {
    let headers = vec![
        "lambda".to_string(),
        "feasible".to_string(),
        "mean_bound".to_string(),
        "lpg_success".to_string(),
        "lpg_gap_pct".to_string(),
        "cls_success".to_string(),
        "cls_gap_pct".to_string(),
        "mean_ms".to_string(),
        "heur_ms".to_string(),
        "mean_iters".to_string(),
        "mean_rows".to_string(),
        "mean_cols".to_string(),
        "scaled".to_string(),
    ];
    let gap_cell = |gap: Option<f64>| {
        gap.map(|g| format!("{:.1}", 100.0 * g))
            .unwrap_or_else(|| "-".to_string())
    };
    let rows = results
        .batches
        .iter()
        .map(|batch| {
            let (rows, cols) = batch.mean_shape();
            vec![
                format!("{:.1}", batch.lambda),
                format!("{:.2}", batch.feasible_rate()),
                batch
                    .mean_bound()
                    .map(|b| format!("{b:.1}"))
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.2}", batch.lp_guided_success_rate()),
                gap_cell(batch.lp_guided_gap()),
                format!("{:.2}", batch.classic_success_rate()),
                gap_cell(batch.classic_gap()),
                format!("{:.2}", batch.mean_ms()),
                format!("{:.2}", batch.mean_heuristics_ms()),
                format!("{:.0}", batch.mean_iterations()),
                format!("{rows:.0}"),
                format!("{cols:.0}"),
                format!("{:.2}", batch.scaled_rate()),
            ]
        })
        .collect();
    SeriesTable { headers, rows }
}

/// Renders the full report (title + table) for `reproduce`.
pub fn scenario_markdown(results: &ScenarioResults) -> String {
    format!(
        "## {}\n\n{}",
        results.config.family.title(),
        scenario_table(results).to_markdown()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_keys_round_trip() {
        for family in [
            ScenarioFamily::Bandwidth,
            ScenarioFamily::BandwidthIllScaled,
            ScenarioFamily::MultiObject,
            ScenarioFamily::MultiObjectBandwidth,
        ] {
            assert_eq!(ScenarioFamily::from_key(family.key()), Some(family));
            assert!(!family.title().is_empty());
        }
        assert_eq!(ScenarioFamily::from_key("nope"), None);
    }

    #[test]
    fn smoke_scenario_sweeps_produce_consistent_batches() {
        for family in [
            ScenarioFamily::Bandwidth,
            ScenarioFamily::MultiObject,
            ScenarioFamily::MultiObjectBandwidth,
        ] {
            let config = ScenarioConfig::smoke_test(family);
            let results = run_scenario(&config);
            assert_eq!(results.batches.len(), config.lambdas.len());
            for batch in &results.batches {
                assert_eq!(batch.trials.len(), config.trees_per_lambda);
                assert_eq!(batch.truncated_count(), 0, "{family:?}");
                for trial in &batch.trials {
                    assert!(trial.rows > 0, "{family:?}");
                    assert!(trial.cols > 0, "{family:?}");
                    assert!(
                        matches!(trial.status, Status::Optimal | Status::Infeasible),
                        "{family:?}: {:?}",
                        trial.status
                    );
                    if let Some(bound) = trial.bound {
                        assert!(bound.is_finite() && bound >= 0.0, "{family:?}");
                        // Every heuristic cost respects the LP bound.
                        for cost in [trial.lp_guided_cost, trial.classic_cost]
                            .into_iter()
                            .flatten()
                        {
                            assert!(
                                cost as f64 + 1e-6 >= bound,
                                "{family:?}: cost {cost} below bound {bound}"
                            );
                        }
                    } else {
                        // No relaxation, no placements.
                        assert_eq!(trial.lp_guided_cost, None, "{family:?}");
                    }
                }
            }
            // The heuristic columns are genuinely populated: at least
            // one feasible trial must have been rounded successfully.
            let rounded: usize = results
                .batches
                .iter()
                .flat_map(|b| &b.trials)
                .filter(|t| t.lp_guided_cost.is_some())
                .count();
            assert!(rounded > 0, "{family:?}: no LP-guided placements at all");
            let table = scenario_table(&results);
            assert_eq!(table.num_rows(), config.lambdas.len());
            assert!(table.headers.contains(&"lpg_success".to_string()));
            assert!(scenario_markdown(&results).contains(family.title()));
        }
    }

    #[test]
    fn scenario_sweeps_are_deterministic_and_engine_independent() {
        let config = ScenarioConfig::smoke_test(ScenarioFamily::Bandwidth);
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        let dense = run_scenario(&ScenarioConfig {
            engine: LpEngine::DenseTableau,
            ..config.clone()
        });
        for ((ba, bb), bd) in a.batches.iter().zip(&b.batches).zip(&dense.batches) {
            for ((ta, tb), td) in ba.trials.iter().zip(&bb.trials).zip(&bd.trials) {
                assert_eq!(ta.bound.is_some(), tb.bound.is_some());
                if let (Some(x), Some(y)) = (ta.bound, tb.bound) {
                    assert!((x - y).abs() < 1e-9);
                }
                // The dense oracle agrees on feasibility and objective.
                assert_eq!(ta.bound.is_some(), td.bound.is_some(), "λ={}", ba.lambda);
                if let (Some(x), Some(y)) = (ta.bound, td.bound) {
                    assert!((x - y).abs() < 1e-5 * x.abs().max(1.0), "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn auto_scaling_leaves_both_bandwidth_families_unscaled() {
        // The wide-range platform's ~2e5 entry spread sits below the
        // retuned `Scaling::Auto` trigger (the solver is robust there
        // without equilibration, and the pass costs iterations — see
        // `AUTO_SPREAD`), so neither family scales under the default
        // options; the forced-geometric path is pinned by the rp-lp
        // unit tests and the `--smoke-bandwidth` CI gate instead.
        for family in [
            ScenarioFamily::BandwidthIllScaled,
            ScenarioFamily::Bandwidth,
        ] {
            let results = run_scenario(&ScenarioConfig {
                lambdas: vec![0.4],
                trees_per_lambda: 2,
                problem_size: 40,
                ..ScenarioConfig::smoke_test(family)
            });
            let batch = &results.batches[0];
            assert_eq!(batch.scaled_rate(), 0.0, "{family:?} should stay unscaled");
            assert!(batch.trials.iter().all(|t| t.scaling_spread.is_none()));
        }
    }
}
