//! Turning sweep results into the tables behind the paper's figures.
//!
//! Figures 9–12 are line plots of "percentage of success" and "relative
//! cost" against λ, one series per heuristic (plus the LP series on the
//! success plots). This module renders the same data as CSV (for
//! replotting) and as human-readable markdown tables.

use rp_core::Heuristic;

use crate::metrics::LambdaBatch;
use crate::runner::SweepResults;

/// A simple rectangular table: a header row plus data rows.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl SeriesTable {
    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_row(row));
        }
        out
    }

    /// Renders the table as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

fn csv_row(fields: &[String]) -> String {
    let escaped: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.contains(',') || f.contains('"') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

fn heuristic_columns(heuristics: &[Heuristic]) -> Vec<String> {
    heuristics
        .iter()
        .map(|h| h.full_name().to_string())
        .collect()
}

/// The "percentage of success" table (Figures 9 and 11): one row per λ,
/// one column per heuristic plus the LP column.
pub fn success_table(results: &SweepResults) -> SeriesTable {
    let heuristics = &results.config.heuristics;
    let mut headers = vec!["lambda".to_string()];
    headers.extend(heuristic_columns(heuristics));
    headers.push("LP".to_string());

    let rows = results
        .batches
        .iter()
        .map(|batch| {
            let mut row = vec![format!("{:.1}", batch.lambda)];
            for &h in heuristics {
                row.push(format!("{:.3}", batch.success_rate(h)));
            }
            row.push(format!("{:.3}", batch.lp_success_rate()));
            row
        })
        .collect();
    SeriesTable { headers, rows }
}

/// The "relative cost" table (Figures 10 and 12): one row per λ, one
/// column per heuristic.
pub fn relative_cost_table(results: &SweepResults) -> SeriesTable {
    let heuristics = &results.config.heuristics;
    let mut headers = vec!["lambda".to_string()];
    headers.extend(heuristic_columns(heuristics));

    let rows = results
        .batches
        .iter()
        .map(|batch| {
            let mut row = vec![format!("{:.1}", batch.lambda)];
            for &h in heuristics {
                row.push(format!("{:.3}", batch.relative_cost(h)));
            }
            row
        })
        .collect();
    SeriesTable { headers, rows }
}

/// A per-λ summary of sizes and runtimes, handy for EXPERIMENTS.md.
pub fn runtime_table(results: &SweepResults) -> SeriesTable {
    let headers = vec![
        "lambda".to_string(),
        "trees".to_string(),
        "mean_problem_size".to_string(),
        "total_seconds".to_string(),
    ];
    let rows = results
        .batches
        .iter()
        .map(|batch: &LambdaBatch| {
            vec![
                format!("{:.1}", batch.lambda),
                batch.trials.len().to_string(),
                format!("{:.1}", batch.mean_problem_size()),
                format!("{:.2}", batch.total_seconds()),
            ]
        })
        .collect();
    SeriesTable { headers, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TrialResult;
    use crate::runner::ExperimentConfig;

    fn fake_results() -> SweepResults {
        let config = ExperimentConfig {
            heuristics: vec![Heuristic::Cbu, Heuristic::Mg],
            ..ExperimentConfig::smoke_test()
        };
        let trial = |lp: Option<f64>, cbu: Option<u64>, mg: Option<u64>| TrialResult {
            tree_index: 0,
            problem_size: 20,
            achieved_lambda: 0.5,
            lp_bound: lp,
            heuristic_costs: vec![(Heuristic::Cbu, cbu), (Heuristic::Mg, mg)],
            lp_seconds: 0.01,
            heuristics_seconds: 0.02,
        };
        SweepResults {
            config,
            batches: vec![
                LambdaBatch {
                    lambda: 0.2,
                    trials: vec![trial(Some(10.0), Some(12), Some(11))],
                },
                LambdaBatch {
                    lambda: 0.6,
                    trials: vec![trial(Some(10.0), None, Some(14)), trial(None, None, None)],
                },
            ],
        }
    }

    #[test]
    fn success_table_has_lambda_heuristics_and_lp_columns() {
        let table = success_table(&fake_results());
        assert_eq!(
            table.headers,
            vec!["lambda", "ClosestBottomUp", "MultipleGreedy", "LP"]
        );
        assert_eq!(table.num_rows(), 2);
        // λ = 0.6: CBU succeeded on 0/2 trees, MG on 1/2, LP on 1/2.
        assert_eq!(table.rows[1], vec!["0.6", "0.000", "0.500", "0.500"]);
    }

    #[test]
    fn relative_cost_table_matches_metric_values() {
        let table = relative_cost_table(&fake_results());
        assert_eq!(table.headers.len(), 3);
        // λ = 0.2: CBU = 10/12, MG = 10/11.
        assert_eq!(table.rows[0][1], format!("{:.3}", 10.0 / 12.0));
        assert_eq!(table.rows[0][2], format!("{:.3}", 10.0 / 11.0));
    }

    #[test]
    fn csv_and_markdown_render() {
        let table = success_table(&fake_results());
        let csv = table.to_csv();
        assert!(csv.starts_with("lambda,"));
        assert_eq!(csv.lines().count(), 3);
        let md = table.to_markdown();
        assert!(md.starts_with("| lambda |"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn csv_escapes_fields_with_commas() {
        let table = SeriesTable {
            headers: vec!["a".into(), "b,c".into()],
            rows: vec![vec!["1".into(), "say \"hi\"".into()]],
        };
        let csv = table.to_csv();
        assert!(csv.contains("\"b,c\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn runtime_table_reports_sizes_and_seconds() {
        let table = runtime_table(&fake_results());
        assert_eq!(table.headers[2], "mean_problem_size");
        assert_eq!(table.rows[0][1], "1");
        assert_eq!(table.rows[1][1], "2");
    }
}
