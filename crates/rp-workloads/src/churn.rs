//! Seeded churn-trace generation for the online placement engine.
//!
//! A churn trace is a time-ordered stream of
//! [`InstanceDelta`]s: clients arriving, departing and drifting,
//! interleaved with server re-provisions and with platform failures
//! and their paired recoveries.
//! Event times are drawn from an **inhomogeneous Poisson process** with
//! a diurnal (sinusoidal) rate curve, sampled by thinning: candidate
//! inter-arrival gaps come from the peak rate `λ_max`, and a candidate
//! at time `t` is kept with probability `λ(t) / λ_max` where
//!
//! ```text
//! λ(t) = base_rate · (1 + amplitude · sin(2πt / period))
//! ```
//!
//! Everything is a pure function of one `u64` seed (the
//! `StdRng::seed_from_u64` idiom of the other generators), so any chaos
//! run reproduces from the seed printed in its report.
//!
//! Demand-side events keep a consistent client population: arrivals
//! pick currently absent client slots, departures and drifts pick
//! present ones. Failure events draw the same mixed kinds as
//! [`failure_trace`](crate::failure_trace) and each schedules a paired
//! [`RecoveryScope`] event an exponential lag later, so a long trace
//! heals as often as it breaks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::{FailureEvent, InstanceDelta, ProblemInstance, RecoveryScope};
use rp_tree::{ClientId, LinkId, NodeId, TreeNetwork};

/// Rate-curve and event-mix parameters of a churn trace.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Mean event rate, events per simulated second.
    pub base_rate: f64,
    /// Diurnal swing in `[0, 1)`: 0 is a flat (homogeneous) process,
    /// 0.8 swings between 0.2× and 1.8× the base rate.
    pub amplitude: f64,
    /// Period of the diurnal curve in simulated seconds.
    pub period: f64,
    /// Fraction of events that are platform failures.
    pub failure_fraction: f64,
    /// Fraction of events that re-provision a server to a new healthy
    /// capacity ([`InstanceDelta::CapacityChanged`]). The rest — after
    /// failures and re-provisions — are demand-side events: arrival /
    /// departure / drift.
    pub reprovision_fraction: f64,
    /// Mean lag (simulated seconds) between a failure and its paired
    /// recovery.
    pub recovery_lag: f64,
}

impl ChurnConfig {
    /// A moderate default: one event per second swinging ±60% over a
    /// 600 s "day", 20% failures healing after ~30 s, 10% server
    /// re-provisions.
    pub fn new() -> Self {
        ChurnConfig {
            base_rate: 1.0,
            amplitude: 0.6,
            period: 600.0,
            failure_fraction: 0.2,
            reprovision_fraction: 0.1,
            recovery_lag: 30.0,
        }
    }
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig::new()
    }
}

/// One trace entry: a delta and the simulated time it fires at.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimedDelta {
    /// Simulated seconds since the start of the trace.
    pub at: f64,
    /// The instance change.
    pub delta: InstanceDelta,
}

/// Generates a churn trace of exactly `len` deltas against `problem`,
/// deterministic in `seed`. The trace is sorted by time; paired
/// recoveries landing past the cut-off are dropped (an unhealed
/// failure is a perfectly legal way for a trace to end).
pub fn churn_trace(
    problem: &ProblemInstance,
    config: &ChurnConfig,
    len: usize,
    seed: u64,
) -> Vec<TimedDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = problem.tree();
    let mut events: Vec<TimedDelta> = Vec::with_capacity(len * 2);

    // Live demand per client slot, so arrivals/departures stay
    // consistent along the trace.
    let mut demand: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
    let max_request = tree
        .client_ids()
        .map(|c| problem.requests(c))
        .max()
        .unwrap_or(1)
        .max(1);

    let lambda_max = config.base_rate * (1.0 + config.amplitude);
    let mut t = 0.0_f64;
    while events.len() < len {
        // Thinning: step at the peak rate, keep with λ(t)/λ_max.
        t += exponential(&mut rng, lambda_max);
        let lambda_t = config.base_rate
            * (1.0 + config.amplitude * (2.0 * std::f64::consts::PI * t / config.period).sin());
        if rng.gen_range(0.0..1.0) * lambda_max > lambda_t {
            continue;
        }
        let kind = rng.gen_range(0.0..1.0);
        if kind < config.failure_fraction {
            let failure = sample_failure(problem, &mut rng);
            events.push(TimedDelta {
                at: t,
                delta: InstanceDelta::Failure(failure),
            });
            let heal_at = t + exponential(&mut rng, 1.0 / config.recovery_lag.max(1e-9));
            events.push(TimedDelta {
                at: heal_at,
                delta: InstanceDelta::Failure(FailureEvent::Recovered(recovery_for(failure))),
            });
        } else if kind < config.failure_fraction + config.reprovision_fraction {
            // Re-provision: the healthy capacity drifts by a uniform
            // factor of the pristine provisioning (never to zero — a
            // dead server is the failure axis's job).
            let node = random_node(tree, &mut rng);
            let factor = rng.gen_range(0.5..1.5);
            let capacity = ((problem.capacity(node) as f64 * factor).round() as u64).max(1);
            events.push(TimedDelta {
                at: t,
                delta: InstanceDelta::CapacityChanged { node, capacity },
            });
        } else {
            events.push(TimedDelta {
                at: t,
                delta: sample_demand_event(&mut demand, max_request, &mut rng),
            });
        }
    }

    // Stable sort on time (ties keep generation order) and cut to len.
    events.sort_by(|a, b| a.at.total_cmp(&b.at));
    events.truncate(len);
    events
}

/// The recovery event that undoes `failure`.
pub fn recovery_for(failure: FailureEvent) -> RecoveryScope {
    match failure {
        FailureEvent::ServerCrash(node) => RecoveryScope::Server(node),
        FailureEvent::UplinkDown(link) => RecoveryScope::Link(link),
        // A server recovery also clears outstanding capacity losses.
        FailureEvent::CapacityLoss { node, .. } => RecoveryScope::Server(node),
        FailureEvent::SubtreeFailure(node) => RecoveryScope::Subtree(node),
        FailureEvent::Recovered(scope) => scope,
    }
}

/// `Exp(rate)` via inversion; the uniform is shifted into `(0, 1]` so
/// `ln` never sees zero.
fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    let u = 1.0 - rng.gen_range(0.0..1.0);
    -u.ln() / rate
}

/// One demand-side event against the live `demand` vector: an arrival
/// on an absent slot, or a departure/drift on a present one.
fn sample_demand_event<R: Rng>(demand: &mut [u64], max_request: u64, rng: &mut R) -> InstanceDelta {
    let absent: Vec<usize> = (0..demand.len()).filter(|&i| demand[i] == 0).collect();
    let present: Vec<usize> = (0..demand.len()).filter(|&i| demand[i] > 0).collect();

    // 0 = arrival, 1 = departure, 2 = drift; fall back to whatever the
    // population allows.
    let choice = rng.gen_range(0..3u32);
    if (choice == 0 || present.is_empty()) && !absent.is_empty() {
        let slot = absent[rng.gen_range(0..absent.len())];
        let requests = rng.gen_range(1..=max_request);
        demand[slot] = requests;
        return InstanceDelta::ClientArrived {
            client: ClientId::from_index(slot),
            requests,
        };
    }
    if present.is_empty() {
        // Fully drained tree with nothing absent cannot happen (then
        // demand would be non-empty); treat as a no-op drift on slot 0.
        return InstanceDelta::DemandChanged {
            client: ClientId::from_index(0),
            requests: demand.first().copied().unwrap_or(0),
        };
    }
    let slot = present[rng.gen_range(0..present.len())];
    if choice == 1 {
        demand[slot] = 0;
        InstanceDelta::ClientDeparted {
            client: ClientId::from_index(slot),
        }
    } else {
        // Drift: scale by a uniform factor in [0.6, 1.5], at least 1.
        let factor = rng.gen_range(0.6..1.5);
        let requests = ((demand[slot] as f64 * factor).round() as u64).max(1);
        demand[slot] = requests;
        InstanceDelta::DemandChanged {
            client: ClientId::from_index(slot),
            requests,
        }
    }
}

/// The same mixed failure kinds as [`failure_trace`]
/// (crash / link / capacity loss / subtree), drawn inline so the churn
/// stream shares one RNG.
fn sample_failure<R: Rng>(problem: &ProblemInstance, rng: &mut R) -> FailureEvent {
    let tree = problem.tree();
    match rng.gen_range(0..4u32) {
        0 => FailureEvent::ServerCrash(random_node(tree, rng)),
        1 => match random_link(tree, rng) {
            Some(link) => FailureEvent::UplinkDown(link),
            None => FailureEvent::ServerCrash(tree.root()),
        },
        2 => {
            let node = random_node(tree, rng);
            let capacity = problem.capacity(node);
            FailureEvent::CapacityLoss {
                node,
                remaining: if capacity == 0 {
                    0
                } else {
                    rng.gen_range(0..capacity)
                },
            }
        }
        _ => {
            let candidates: Vec<NodeId> = tree.node_ids().filter(|&n| !tree.is_root(n)).collect();
            if candidates.is_empty() {
                FailureEvent::ServerCrash(tree.root())
            } else {
                FailureEvent::SubtreeFailure(candidates[rng.gen_range(0..candidates.len())])
            }
        }
    }
}

fn random_node<R: Rng>(tree: &TreeNetwork, rng: &mut R) -> NodeId {
    NodeId::from_index(rng.gen_range(0..tree.num_nodes()))
}

fn random_link<R: Rng>(tree: &TreeNetwork, rng: &mut R) -> Option<LinkId> {
    let clients = tree.num_clients();
    let uplinks = tree.num_nodes().saturating_sub(1);
    let total = clients + uplinks;
    if total == 0 {
        return None;
    }
    let pick = rng.gen_range(0..total);
    if pick < clients {
        Some(LinkId::Client(ClientId::from_index(pick)))
    } else {
        let candidates: Vec<NodeId> = tree.node_ids().filter(|&n| !tree.is_root(n)).collect();
        Some(LinkId::Node(candidates[pick - clients]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{generate_problem, PlatformKind, WorkloadConfig};
    use crate::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

    fn sample_problem() -> ProblemInstance {
        let tree = generate_tree(
            &TreeGenConfig::with_problem_size(80, TreeShape::RandomAttachment),
            7,
        );
        generate_problem(
            tree,
            &WorkloadConfig::new(PlatformKind::default_heterogeneous(), 0.4),
            9,
        )
    }

    #[test]
    fn traces_are_deterministic_and_time_ordered() {
        let p = sample_problem();
        for seed in [0u64, 5, 99] {
            let a = churn_trace(&p, &ChurnConfig::new(), 300, seed);
            let b = churn_trace(&p, &ChurnConfig::new(), 300, seed);
            assert_eq!(a.len(), 300);
            assert_eq!(a, b);
            for pair in a.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
        }
        assert_ne!(
            churn_trace(&p, &ChurnConfig::new(), 50, 1),
            churn_trace(&p, &ChurnConfig::new(), 50, 2)
        );
    }

    #[test]
    fn traces_mix_demand_failure_and_recovery_events() {
        let p = sample_problem();
        let trace = churn_trace(&p, &ChurnConfig::new(), 600, 42);
        let kinds: std::collections::HashSet<&'static str> =
            trace.iter().map(|e| e.delta.kind_name()).collect();
        for kind in [
            "client-arrived",
            "client-departed",
            "demand-changed",
            "capacity-changed",
            "recovered",
        ] {
            assert!(kinds.contains(kind), "missing {kind}: {kinds:?}");
        }
        // At least one concrete failure kind is present too.
        assert!(
            [
                "server-crash",
                "uplink-down",
                "capacity-loss",
                "subtree-failure"
            ]
            .iter()
            .any(|k| kinds.contains(k)),
            "no failures in {kinds:?}"
        );
    }

    #[test]
    fn every_recovery_heals_an_earlier_failure() {
        let p = sample_problem();
        let trace = churn_trace(&p, &ChurnConfig::new(), 500, 7);
        let mut outstanding: Vec<RecoveryScope> = Vec::new();
        for entry in &trace {
            match entry.delta {
                InstanceDelta::Failure(FailureEvent::Recovered(scope)) => {
                    let pos = outstanding.iter().position(|&s| s == scope);
                    assert!(pos.is_some(), "orphan recovery {scope:?}");
                    outstanding.remove(pos.unwrap());
                }
                InstanceDelta::Failure(failure) => outstanding.push(recovery_for(failure)),
                _ => {}
            }
        }
    }

    #[test]
    fn diurnal_rate_concentrates_events_in_the_peak_half() {
        let p = sample_problem();
        let config = ChurnConfig {
            amplitude: 0.9,
            ..ChurnConfig::new()
        };
        let trace = churn_trace(&p, &config, 1000, 3);
        let period = config.period;
        // sin > 0 on the first half of each period: the "day".
        let day = trace
            .iter()
            .filter(|e| (e.at % period) < period / 2.0)
            .count();
        let night = trace.len() - day;
        assert!(day > night, "day {day} vs night {night}");
    }

    #[test]
    fn demand_events_respect_the_live_population() {
        let p = sample_problem();
        let trace = churn_trace(&p, &ChurnConfig::new(), 800, 11);
        let tree = p.tree();
        let mut demand: Vec<u64> = tree.client_ids().map(|c| p.requests(c)).collect();
        for entry in &trace {
            match entry.delta {
                InstanceDelta::ClientArrived { client, requests } => {
                    assert_eq!(demand[client.index()], 0, "arrival on a present client");
                    assert!(requests > 0);
                    demand[client.index()] = requests;
                }
                InstanceDelta::ClientDeparted { client } => {
                    assert!(demand[client.index()] > 0, "departure of an absent client");
                    demand[client.index()] = 0;
                }
                InstanceDelta::DemandChanged { client, requests } => {
                    assert!(requests > 0);
                    demand[client.index()] = requests;
                }
                _ => {}
            }
        }
    }
}
