//! Seeded failure-trace generators for the chaos and resilience sweeps.
//!
//! Every generator is a pure function of a single `u64` seed (via the
//! same `StdRng::seed_from_u64` idiom the platform generators use), so
//! a chaos run is reproducible from the one number printed in its
//! report. Node, link and event-kind choices are uniform unless noted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::{FailureEvent, ProblemInstance};
use rp_tree::{ClientId, LinkId, NodeId, TreeNetwork};

/// Draws a uniformly random **single server crash** from `seed`.
pub fn sample_node_failure(problem: &ProblemInstance, seed: u64) -> FailureEvent {
    let mut rng = StdRng::seed_from_u64(seed);
    FailureEvent::ServerCrash(random_node(problem.tree(), &mut rng))
}

/// Draws a uniformly random **single link failure** from `seed`: any
/// client uplink or non-root node uplink. (Degenerate trees without a
/// single severable link fall back to crashing the root.)
pub fn sample_link_failure(problem: &ProblemInstance, seed: u64) -> FailureEvent {
    let mut rng = StdRng::seed_from_u64(seed);
    match random_link(problem.tree(), &mut rng) {
        Some(link) => FailureEvent::UplinkDown(link),
        None => FailureEvent::ServerCrash(problem.tree().root()),
    }
}

/// Generates a mixed failure trace of `len` events from `seed`: each
/// event is independently a server crash, a link failure, a capacity
/// loss (to a uniformly drawn fraction of the node's current capacity)
/// or a correlated subtree failure of a non-root node.
pub fn failure_trace(problem: &ProblemInstance, len: usize, seed: u64) -> Vec<FailureEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = problem.tree();
    (0..len)
        .map(|_| match rng.gen_range(0..4u32) {
            0 => FailureEvent::ServerCrash(random_node(tree, &mut rng)),
            1 => match random_link(tree, &mut rng) {
                Some(link) => FailureEvent::UplinkDown(link),
                None => FailureEvent::ServerCrash(tree.root()),
            },
            2 => {
                let node = random_node(tree, &mut rng);
                let capacity = problem.capacity(node);
                FailureEvent::CapacityLoss {
                    node,
                    remaining: if capacity == 0 {
                        0
                    } else {
                        rng.gen_range(0..capacity)
                    },
                }
            }
            _ => match random_non_root_node(tree, &mut rng) {
                // Subtree failure of the root would erase the platform;
                // model correlated failures below it instead.
                Some(node) => FailureEvent::SubtreeFailure(node),
                None => FailureEvent::ServerCrash(tree.root()),
            },
        })
        .collect()
}

fn random_node<R: Rng>(tree: &TreeNetwork, rng: &mut R) -> NodeId {
    NodeId::from_index(rng.gen_range(0..tree.num_nodes()))
}

fn random_non_root_node<R: Rng>(tree: &TreeNetwork, rng: &mut R) -> Option<NodeId> {
    let candidates: Vec<NodeId> = tree.node_ids().filter(|&n| !tree.is_root(n)).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

fn random_link<R: Rng>(tree: &TreeNetwork, rng: &mut R) -> Option<LinkId> {
    let clients = tree.num_clients();
    let uplinks = tree.num_nodes().saturating_sub(1);
    let total = clients + uplinks;
    if total == 0 {
        return None;
    }
    let pick = rng.gen_range(0..total);
    if pick < clients {
        Some(LinkId::Client(ClientId::from_index(pick)))
    } else {
        let candidates: Vec<NodeId> = tree.node_ids().filter(|&n| !tree.is_root(n)).collect();
        Some(LinkId::Node(candidates[pick - clients]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{generate_problem, PlatformKind, WorkloadConfig};
    use crate::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

    fn sample_problem() -> ProblemInstance {
        let tree = generate_tree(
            &TreeGenConfig::with_problem_size(60, TreeShape::RandomAttachment),
            11,
        );
        generate_problem(
            tree,
            &WorkloadConfig::new(PlatformKind::default_heterogeneous(), 0.4),
            13,
        )
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        let p = sample_problem();
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(sample_node_failure(&p, seed), sample_node_failure(&p, seed));
            assert_eq!(sample_link_failure(&p, seed), sample_link_failure(&p, seed));
            assert_eq!(failure_trace(&p, 6, seed), failure_trace(&p, 6, seed));
        }
        // And different seeds do explore different failures.
        let distinct: std::collections::HashSet<String> = (0..32)
            .map(|seed| format!("{:?}", sample_node_failure(&p, seed)))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn sampled_failures_name_real_platform_elements() {
        let p = sample_problem();
        let tree = p.tree();
        for seed in 0..64u64 {
            match sample_node_failure(&p, seed) {
                FailureEvent::ServerCrash(node) => assert!(node.index() < tree.num_nodes()),
                other => panic!("unexpected event {other:?}"),
            }
            match sample_link_failure(&p, seed) {
                FailureEvent::UplinkDown(LinkId::Client(c)) => {
                    assert!(c.index() < tree.num_clients())
                }
                FailureEvent::UplinkDown(LinkId::Node(n)) => {
                    assert!(n.index() < tree.num_nodes());
                    assert!(!tree.is_root(n));
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_traces_cover_every_event_kind() {
        let p = sample_problem();
        let kinds: std::collections::HashSet<&'static str> = (0..40u64)
            .flat_map(|seed| failure_trace(&p, 4, seed))
            .map(|e| e.kind_name())
            .collect();
        assert!(kinds.contains("server-crash"));
        assert!(kinds.contains("uplink-down"));
        assert!(kinds.contains("capacity-loss"));
        assert!(kinds.contains("subtree-failure"));
        // Capacity losses always degrade below the current capacity,
        // and subtree failures never name the root.
        for seed in 0..40u64 {
            for event in failure_trace(&p, 4, seed) {
                match event {
                    FailureEvent::CapacityLoss { node, remaining } => {
                        assert!(remaining < p.capacity(node))
                    }
                    FailureEvent::SubtreeFailure(node) => assert!(!p.tree().is_root(node)),
                    _ => {}
                }
            }
        }
    }
}
