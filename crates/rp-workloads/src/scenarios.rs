//! Bandwidth-constrained and multi-object workload families — the
//! problem variants of the paper's Sections 2.2 and 8.1, generated at
//! every scale from unit-test trees to the `s = 2000` class that only
//! the sparse revised-simplex engine reaches.
//!
//! Three families:
//!
//! * **Bandwidth-constrained** ([`bandwidth_instance`] and friends):
//!   every node's uplink gets a capacity proportional to the demand of
//!   its subtree, with a per-link random *headroom* factor. Headroom
//!   `≥ 1` keeps the link rows slack-but-present (the LP path changes,
//!   feasibility does not); headroom dipping below 1 makes them bind
//!   and the success rate λ-dependent.
//! * **Ill-scaled bandwidth** ([`ill_scaled_bandwidth_instance`]):
//!   the same link structure over a platform whose capacities span five
//!   decades, which drives the constraint-matrix entry spread far past
//!   the equilibration trigger ([`rp_lp` `Scaling::Auto`]) — the
//!   numerically hostile regime the scaling pass exists for.
//! * **Multi-object** ([`multi_object_instance`],
//!   [`multi_object_bandwidth_instance`]): several databases share the
//!   node capacities (and, in the bandwidth variant, the links); the
//!   per-object demands split a λ-targeted total.
//!
//! All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::multi::MultiObjectProblem;
use rp_core::ProblemInstance;
use rp_tree::TreeNetwork;

use std::sync::Arc;

use crate::platform::{generate_problem, PlatformKind, WorkloadConfig};
use crate::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

/// The multi-thousand-row problem size class: `s = |C| + |N| = 2000`
/// (about 667 internal nodes and 1333 clients). The bandwidth
/// formulation adds one flow row per (client, path link) on top, so the
/// LP comfortably exceeds several thousand rows — the scale PR 3's
/// sparse core was built for.
pub const BANDWIDTH_SCALE_S: usize = 2000;

/// Wide-range platform of the ill-scaled families: capacities (and
/// storage costs) uniform over five decades.
pub fn wide_range_platform() -> PlatformKind {
    PlatformKind::HeterogeneousUniform {
        min: 2,
        max: 200_000,
    }
}

/// Rebuilds `problem` with a bandwidth bound on every node uplink:
/// `BW_l = ceil(h · subtree_demand(l))` with the headroom `h` drawn
/// uniformly from `headroom` per link (deterministically in `seed`).
/// Client links stay unbounded — the first-link flow equality forces
/// them to carry exactly `r_i`, so any bound below that is a trivial
/// infeasibility rather than an interesting constraint. With
/// `headroom.0 >= 1.0` every link can carry its whole subtree's demand
/// and feasibility is exactly that of the unconstrained instance.
pub fn attach_link_bandwidths(
    problem: &ProblemInstance,
    headroom: (f64, f64),
    seed: u64,
) -> ProblemInstance {
    assert!(
        0.0 < headroom.0 && headroom.0 <= headroom.1,
        "headroom range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = problem.tree();
    let node_links: Vec<Option<u64>> = tree
        .node_ids()
        .map(|node| {
            if tree.is_root(node) {
                None
            } else {
                let h = rng.gen_range(headroom.0..=headroom.1);
                Some((h * problem.subtree_requests(node) as f64).ceil() as u64)
            }
        })
        .collect();
    rebuild_with_links(problem, vec![None; tree.num_clients()], node_links)
}

fn rebuild_with_links(
    problem: &ProblemInstance,
    client_links: Vec<Option<u64>>,
    node_links: Vec<Option<u64>>,
) -> ProblemInstance {
    let tree = problem.tree_arc();
    let requests: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
    let capacities: Vec<u64> = tree.node_ids().map(|n| problem.capacity(n)).collect();
    let costs: Vec<u64> = tree.node_ids().map(|n| problem.storage_cost(n)).collect();
    let qos: Vec<Option<u32>> = tree.client_ids().map(|c| problem.qos(c)).collect();
    ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities)
        .storage_costs(costs)
        .qos(qos)
        .client_link_bandwidths(client_links)
        .node_link_bandwidths(node_links)
        .kind(problem.kind())
        .build()
}

/// A bandwidth-constrained instance of the given problem size over the
/// default heterogeneous platform, with per-link headroom in
/// `[0.5, 1.5]`: roughly half the links bind, so feasibility (and the
/// LP bound) genuinely depends on the link capacities.
pub fn bandwidth_instance(problem_size: usize, lambda: f64, seed: u64) -> ProblemInstance {
    let base = base_instance(
        problem_size,
        PlatformKind::default_heterogeneous(),
        lambda,
        seed,
    );
    attach_link_bandwidths(&base, (0.5, 1.5), seed ^ 0xB4DD)
}

/// A bandwidth-constrained instance whose links are guaranteed slack
/// enough (headroom in `[1.0, 2.0]`) that feasibility matches the
/// unconstrained instance — the link rows are present and shape the LP,
/// but a λ-feasible workload stays solvable. The `BENCH_scenarios.json`
/// timings use this family so every recorded solve completed; it is
/// also the well-scaled counterpart of
/// [`ill_scaled_bandwidth_instance`] (same links, default platform).
pub fn feasible_bandwidth_instance(problem_size: usize, lambda: f64, seed: u64) -> ProblemInstance {
    let base = base_instance(
        problem_size,
        PlatformKind::default_heterogeneous(),
        lambda,
        seed,
    );
    attach_link_bandwidths(&base, (1.0, 2.0), seed ^ 0xB4DD)
}

/// The ill-scaled bandwidth family: feasible-headroom links over the
/// [`wide_range_platform`], whose five-decade capacities push the
/// constraint matrix's entry spread past the `Scaling::Auto` trigger.
pub fn ill_scaled_bandwidth_instance(
    problem_size: usize,
    lambda: f64,
    seed: u64,
) -> ProblemInstance {
    let base = base_instance(problem_size, wide_range_platform(), lambda, seed);
    attach_link_bandwidths(&base, (1.0, 2.0), seed ^ 0xB4DD)
}

/// The `s = 2000`-class bandwidth-constrained instance family of the CI
/// smoke: ill-scaled wide-range capacities, feasible link headroom,
/// multi-thousand-row LP relaxations.
pub fn bandwidth_scale_instance(lambda: f64, seed: u64) -> ProblemInstance {
    ill_scaled_bandwidth_instance(BANDWIDTH_SCALE_S, lambda, seed)
}

fn base_instance(
    problem_size: usize,
    platform: PlatformKind,
    lambda: f64,
    seed: u64,
) -> ProblemInstance {
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(problem_size, TreeShape::RandomAttachment),
        seed,
    );
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0x5CA1E)
}

/// A multi-object instance: `num_objects` databases over one tree with
/// shared heterogeneous capacities. The λ-targeted total demand is
/// split across the objects by random shares, each object's per-client
/// requests are drawn independently (clients may well request nothing
/// of some object), and each object prices a replica at a jittered
/// multiple of the node capacity — so no object dominates and the
/// shared capacity rows genuinely couple them.
pub fn multi_object_instance(
    problem_size: usize,
    num_objects: usize,
    lambda: f64,
    seed: u64,
) -> MultiObjectProblem {
    assert!(num_objects >= 1);
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(problem_size, TreeShape::RandomAttachment),
        seed,
    );
    multi_object_over(
        tree,
        num_objects,
        lambda,
        PlatformKind::default_heterogeneous(),
        seed,
    )
}

/// [`multi_object_instance`] with every node uplink bounded at a
/// feasible headroom over the subtree's **combined** (all-object)
/// demand: the per-object `z` variables and the shared link rows of the
/// extended formulation all materialise.
pub fn multi_object_bandwidth_instance(
    problem_size: usize,
    num_objects: usize,
    lambda: f64,
    seed: u64,
) -> MultiObjectProblem {
    let problem = multi_object_instance(problem_size, num_objects, lambda, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB4DD);
    let (num_clients, node_links) = {
        let tree = problem.tree();
        // Combined subtree demand per node, over all objects.
        let node_links: Vec<Option<u64>> = tree
            .node_ids()
            .map(|node| {
                if tree.is_root(node) {
                    None
                } else {
                    let combined: u64 = tree
                        .subtree_clients(node)
                        .iter()
                        .map(|&c| {
                            problem
                                .object_ids()
                                .map(|k| problem.requests(k, c))
                                .sum::<u64>()
                        })
                        .sum();
                    let h = rng.gen_range(1.0..=2.0);
                    Some((h * combined as f64).ceil() as u64)
                }
            })
            .collect();
        (tree.num_clients(), node_links)
    };
    problem.with_link_bandwidths(vec![None; num_clients], node_links)
}

/// A multi-object **Replica Counting** instance: homogeneous node
/// capacity, unit storage cost per (object, node) — the Section 8.1
/// extension of the paper's counting flavour. On this family the
/// rational relaxation is *tight* (a saturated replica's fractional
/// `x_{k,j}` is exactly 1, so the bound essentially counts
/// `total demand / W`), which makes it the right yardstick for
/// measuring rounding quality: a cost-vs-LP gap here is genuine
/// heuristic slack, not the intrinsic integrality gap of the
/// jittered-cost family (where `K` objects sharing a node make even
/// the exact optimum sit far above the rational bound).
pub fn multi_object_counting_instance(
    problem_size: usize,
    num_objects: usize,
    lambda: f64,
    seed: u64,
) -> MultiObjectProblem {
    assert!(num_objects >= 1);
    assert!(lambda > 0.0, "the load factor must be positive");
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(problem_size, TreeShape::RandomAttachment),
        seed,
    );
    let tree: Arc<TreeNetwork> = Arc::new(tree);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0047);
    const CAPACITY: u64 = 12;
    let num_nodes = tree.num_nodes();
    let num_clients = tree.num_clients();
    let total_capacity = CAPACITY * num_nodes as u64;
    let target_total = (lambda * total_capacity as f64).max(1.0);
    let mut requests = Vec::with_capacity(num_objects);
    for _ in 0..num_objects {
        let object_total = target_total / num_objects as f64;
        let weights: Vec<f64> = (0..num_clients).map(|_| rng.gen_range(0.1..=1.0)).collect();
        let weight_sum: f64 = weights.iter().sum::<f64>().max(1e-9);
        requests.push(
            weights
                .iter()
                .map(|w| ((w / weight_sum) * object_total).round() as u64)
                .collect::<Vec<u64>>(),
        );
    }
    MultiObjectProblem::new(
        tree,
        requests,
        vec![CAPACITY; num_nodes],
        vec![vec![1; num_nodes]; num_objects],
    )
}

fn multi_object_over(
    tree: TreeNetwork,
    num_objects: usize,
    lambda: f64,
    platform: PlatformKind,
    seed: u64,
) -> MultiObjectProblem {
    assert!(lambda > 0.0, "the load factor must be positive");
    let tree: Arc<TreeNetwork> = Arc::new(tree);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B7EC7);
    let capacities: Vec<u64> = match platform {
        PlatformKind::Homogeneous { capacity } => vec![capacity; tree.num_nodes()],
        PlatformKind::HeterogeneousUniform { min, max } => (0..tree.num_nodes())
            .map(|_| rng.gen_range(min..=max))
            .collect(),
    };
    let total_capacity: u64 = capacities.iter().sum();
    let target_total = (lambda * total_capacity as f64).max(1.0);

    // Random per-object shares of the total demand.
    let shares: Vec<f64> = (0..num_objects).map(|_| rng.gen_range(0.2..=1.0)).collect();
    let share_sum: f64 = shares.iter().sum();

    let num_clients = tree.num_clients();
    let mut requests = Vec::with_capacity(num_objects);
    let mut storage_costs = Vec::with_capacity(num_objects);
    for share in &shares {
        let object_total = (target_total * share / share_sum).round().max(1.0);
        // Sparse per-client weights: an object is typically requested
        // by a subset of the clients.
        let weights: Vec<f64> = (0..num_clients)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0.05..=1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum::<f64>().max(1e-9);
        let object_requests: Vec<u64> = weights
            .iter()
            .map(|w| ((w / weight_sum) * object_total).round() as u64)
            .collect();
        requests.push(object_requests);
        // Per-object replica prices: capacity-proportional with a
        // jitter, so the cheap node for one object is not automatically
        // the cheap node for the others.
        let costs: Vec<u64> = capacities
            .iter()
            .map(|&w| ((w as f64 * rng.gen_range(0.5..=1.5)).round() as u64).max(1))
            .collect();
        storage_costs.push(costs);
    }
    MultiObjectProblem::new(tree, requests, capacities, storage_costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::LinkId;

    #[test]
    fn bandwidth_instances_bound_every_non_root_uplink() {
        let p = bandwidth_instance(60, 0.4, 9);
        assert!(p.has_bandwidth_limits());
        let tree = p.tree();
        for node in tree.node_ids().collect::<Vec<_>>() {
            let bw = p.bandwidth(LinkId::Node(node));
            if tree.is_root(node) {
                assert_eq!(bw, None);
            } else {
                let bw = bw.expect("non-root uplinks are bounded");
                // Headroom in [0.5, 1.5] of the subtree demand.
                let demand = p.subtree_requests(node) as f64;
                assert!(bw as f64 >= (0.5 * demand).floor());
                assert!(bw as f64 <= (1.5 * demand).ceil());
            }
        }
        for client in tree.client_ids().collect::<Vec<_>>() {
            assert_eq!(p.bandwidth(LinkId::Client(client)), None);
        }
    }

    #[test]
    fn feasible_headroom_links_cover_their_subtree_demand() {
        let p = feasible_bandwidth_instance(40, 0.3, 3);
        let tree = p.tree();
        for node in tree.node_ids().collect::<Vec<_>>() {
            if let Some(bw) = p.bandwidth(LinkId::Node(node)) {
                assert!(bw >= p.subtree_requests(node));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_preserves_the_base_instance() {
        let a = bandwidth_instance(50, 0.5, 21);
        let b = bandwidth_instance(50, 0.5, 21);
        let tree = a.tree();
        for node in tree.node_ids().collect::<Vec<_>>() {
            assert_eq!(
                a.bandwidth(LinkId::Node(node)),
                b.bandwidth(LinkId::Node(node))
            );
            assert_eq!(a.capacity(node), b.capacity(node));
        }
        // The decoration only adds link bounds: demand and platform
        // match the undecorated generator.
        let base = base_instance(50, PlatformKind::default_heterogeneous(), 0.5, 21);
        assert_eq!(a.total_requests(), base.total_requests());
        assert_eq!(a.total_capacity(), base.total_capacity());
        assert_eq!(a.kind(), base.kind());
    }

    #[test]
    fn ill_scaled_instances_span_decades() {
        let p = ill_scaled_bandwidth_instance(80, 0.4, 5);
        let caps: Vec<u64> = p.tree().node_ids().map(|n| p.capacity(n)).collect();
        let max = *caps.iter().max().unwrap() as f64;
        let min = *caps.iter().min().unwrap() as f64;
        assert!(
            max / min > 1e2,
            "wide-range platform should span decades ({min}..{max})"
        );
        assert!(p.has_bandwidth_limits());
    }

    #[test]
    fn scale_family_reaches_s_2000() {
        // Structure-only assertions (no solve): the s = 2000 class is
        // exercised end-to-end by the CI smoke.
        let p = bandwidth_scale_instance(0.4, 31);
        assert_eq!(p.tree().problem_size(), BANDWIDTH_SCALE_S);
        assert!(p.has_bandwidth_limits());
        assert!((p.load_factor() - 0.4).abs() < 0.05);
    }

    #[test]
    fn multi_object_instances_split_the_lambda_target() {
        let p = multi_object_instance(60, 3, 0.5, 11);
        assert_eq!(p.num_objects(), 3);
        assert!((p.load_factor() - 0.5).abs() < 0.1);
        // Every object carries demand.
        for object in p.object_ids().collect::<Vec<_>>() {
            assert!(p.object_demand(object) >= 1);
        }
        // Deterministic.
        let q = multi_object_instance(60, 3, 0.5, 11);
        let clients: Vec<_> = p.tree().client_ids().collect();
        for object in p.object_ids().collect::<Vec<_>>() {
            for &c in &clients {
                assert_eq!(p.requests(object, c), q.requests(object, c));
            }
        }
    }

    #[test]
    fn counting_instances_are_homogeneous_with_unit_costs() {
        let p = multi_object_counting_instance(60, 2, 0.4, 11);
        assert_eq!(p.num_objects(), 2);
        let tree = p.tree();
        for node in tree.node_ids().collect::<Vec<_>>() {
            assert_eq!(p.capacity(node), 12);
            for object in p.object_ids().collect::<Vec<_>>() {
                assert_eq!(p.storage_cost(object, node), 1);
            }
        }
        assert!((p.load_factor() - 0.4).abs() < 0.1);
        // Deterministic in the seed.
        let q = multi_object_counting_instance(60, 2, 0.4, 11);
        let clients: Vec<_> = p.tree().client_ids().collect();
        for object in p.object_ids().collect::<Vec<_>>() {
            for &c in &clients {
                assert_eq!(p.requests(object, c), q.requests(object, c));
            }
        }
    }

    #[test]
    fn multi_object_bandwidth_instances_bound_the_shared_links() {
        let p = multi_object_bandwidth_instance(40, 2, 0.4, 17);
        assert!(p.has_bandwidth_limits());
        let tree = p.tree();
        for node in tree.node_ids().collect::<Vec<_>>() {
            let bw = p.bandwidth(LinkId::Node(node));
            if tree.is_root(node) {
                assert_eq!(bw, None);
            } else {
                let combined: u64 = tree
                    .subtree_clients(node)
                    .iter()
                    .map(|&c| p.object_ids().map(|k| p.requests(k, c)).sum::<u64>())
                    .sum();
                assert!(bw.expect("bounded uplink") >= combined);
            }
        }
    }
}
