//! The hand-crafted instances used throughout the paper's Sections 3
//! and 4: the policy-separation examples of Figures 1–5 and the
//! NP-completeness reduction gadgets of Figures 7 and 8 — plus small
//! hand-checkable instances of the problem *variants*: link-bandwidth
//! bounds (Section 2.2) and multiple object types (Section 8.1), with
//! their exact optima worked out in the constructor docs so the golden
//! tests can pin them.
//!
//! Each constructor returns a ready-to-solve [`ProblemInstance`] (or
//! [`MultiObjectProblem`]); the integration tests and the `paper_gaps`
//! benchmark replay the paper's claims on them (which policy admits a
//! solution, and at what cost).

use rp_core::multi::MultiObjectProblem;
use rp_core::ProblemInstance;
use rp_tree::TreeBuilder;

/// Figure 1: two stacked nodes `s2 (root) -> s1`, both with capacity 1,
/// and `num_clients` clients below `s1`, each issuing
/// `requests_per_client` requests.
///
/// * `(1, 1)` — all three policies have a solution with one replica;
/// * `(2, 1)` — Closest has no solution, Upwards/Multiple use 2 replicas;
/// * `(1, 2)` — only Multiple has a solution (2 replicas).
pub fn figure1(num_clients: usize, requests_per_client: u64) -> ProblemInstance {
    let mut b = TreeBuilder::new();
    let s2 = b.add_root();
    b.set_node_label(s2, "s2");
    let s1 = b.add_node(s2);
    b.set_node_label(s1, "s1");
    for _ in 0..num_clients {
        b.add_client(s1);
    }
    ProblemInstance::replica_counting(
        b.build().expect("valid construction"),
        vec![requests_per_client; num_clients],
        1,
    )
}

/// Figure 2: the instance on which Upwards is arbitrarily better than
/// Closest. The root (`s_{2n+2}`) has one unit client and one child
/// (`s_{2n+1}`), which in turn has `2n` child nodes each with a unit
/// client; every node has capacity `n`.
///
/// Upwards needs 3 replicas; Closest needs `n + 2`.
pub fn figure2(n: u64) -> ProblemInstance {
    assert!(n >= 1);
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, format!("s{}", 2 * n + 2));
    let mut requests = vec![1u64];
    b.add_client(root);
    let hub = b.add_node(root);
    b.set_node_label(hub, format!("s{}", 2 * n + 1));
    for i in 0..2 * n {
        let s = b.add_node(hub);
        b.set_node_label(s, format!("s{}", i + 1));
        b.add_client(s);
        requests.push(1);
    }
    ProblemInstance::replica_counting(b.build().expect("valid construction"), requests, n)
}

/// Figure 3: the homogeneous instance on which Multiple approaches a
/// factor-2 advantage over Upwards. The root has a client with `n`
/// requests and `n` child nodes `s_j`; each `s_j` has two child nodes
/// `v_j` and `w_j`, with clients issuing `n` and `n + 1` requests
/// respectively. Every node has capacity `2n`.
///
/// Multiple needs `n + 1` replicas; Upwards needs `2n`.
pub fn figure3(n: u64) -> ProblemInstance {
    assert!(n >= 1);
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, "r");
    let mut requests = vec![n];
    b.add_client(root);
    for j in 0..n {
        let s = b.add_node(root);
        b.set_node_label(s, format!("s{}", j + 1));
        let v = b.add_node(s);
        b.set_node_label(v, format!("v{}", j + 1));
        let w = b.add_node(s);
        b.set_node_label(w, format!("w{}", j + 1));
        b.add_client(v);
        requests.push(n);
        b.add_client(w);
        requests.push(n + 1);
    }
    ProblemInstance::replica_counting(b.build().expect("valid construction"), requests, 2 * n)
}

/// Figure 4: the heterogeneous instance on which Multiple is arbitrarily
/// better than Upwards. A chain `s3 (root) -> s2 -> s1`; `s1` and `s2`
/// have capacity `n`, `s3` has capacity `K·n`. A client with `n + 1`
/// requests hangs below `s1` and a client with `n - 1` requests below
/// `s2`.
///
/// Multiple pays `2n` (replicas on `s1` and `s2`); Upwards is forced to
/// buy `s3` and pays `(K + 1)·n`.
pub fn figure4(n: u64, k: u64) -> ProblemInstance {
    assert!(n >= 2 && k >= 1);
    let mut b = TreeBuilder::new();
    let s3 = b.add_root();
    b.set_node_label(s3, "s3");
    let s2 = b.add_node(s3);
    b.set_node_label(s2, "s2");
    let s1 = b.add_node(s2);
    b.set_node_label(s1, "s1");
    b.add_client(s1); // n + 1 requests
    b.add_client(s2); // n - 1 requests
    ProblemInstance::replica_cost(
        b.build().expect("valid construction"),
        vec![n + 1, n - 1],
        vec![k * n, n, n],
    )
}

/// Figure 5: the instance showing that the trivial lower bound
/// `ceil(Σ r_i / W)` cannot be approached. The root has a client with
/// `W` requests and `n` child nodes, each with a client issuing `W / n`
/// requests (`W` must be divisible by `n`).
///
/// The lower bound is 2 but every policy needs `n + 1` replicas.
pub fn figure5(n: u64, w: u64) -> ProblemInstance {
    assert!(n >= 1 && w.is_multiple_of(n), "W must be divisible by n");
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, "r");
    let mut requests = vec![w];
    b.add_client(root);
    for j in 0..n {
        let s = b.add_node(root);
        b.set_node_label(s, format!("s{}", j + 1));
        b.add_client(s);
        requests.push(w / n);
    }
    ProblemInstance::replica_counting(b.build().expect("valid construction"), requests, w)
}

/// Figure 7: the gadget of the 3-PARTITION reduction proving that
/// Upwards/homogeneous is NP-complete (Theorem 2). Given the `3m`
/// integers `a_i` (with `Σ a_i = m·B`), the tree is a chain of `m`
/// nodes of capacity `B`, the deepest of which (`n_1`) has all `3m`
/// clients below it.
///
/// An Upwards solution of cost `m` (every node a replica) exists iff the
/// integers can be partitioned into `m` triples of sum `B`.
pub fn figure7(values: &[u64], b_target: u64) -> ProblemInstance {
    assert!(
        values.len().is_multiple_of(3),
        "3-PARTITION needs 3m integers"
    );
    let m = values.len() / 3;
    assert!(m >= 1);
    let mut builder = TreeBuilder::new();
    // Chain: n_m (root) -> n_{m-1} -> ... -> n_1.
    let root = builder.add_root();
    builder.set_node_label(root, format!("n{m}"));
    let mut deepest = root;
    for j in (1..m).rev() {
        deepest = builder.add_node(deepest);
        builder.set_node_label(deepest, format!("n{j}"));
    }
    for _ in values {
        builder.add_client(deepest);
    }
    ProblemInstance::replica_counting(
        builder.build().expect("valid construction"),
        values.to_vec(),
        b_target,
    )
}

/// Figure 8: the gadget of the 2-PARTITION reduction proving that
/// Closest and Multiple are NP-complete on heterogeneous nodes
/// (Theorem 3). Given the `m` integers `a_i` with sum `S`, the root has
/// capacity `S/2 + 1` and one unit client; below it hang `m` nodes
/// `n_j` of capacity `a_j`, each with a client issuing `a_j` requests.
///
/// A solution of cost `S + 1` exists iff a subset of the `a_i` sums to
/// `S/2`.
pub fn figure8(values: &[u64]) -> ProblemInstance {
    let s: u64 = values.iter().sum();
    assert!(
        s.is_multiple_of(2),
        "2-PARTITION gadget expects an even total"
    );
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, "r");
    let mut requests = Vec::new();
    let mut capacities = vec![s / 2 + 1];
    for (j, &a) in values.iter().enumerate() {
        let node = b.add_node(root);
        b.set_node_label(node, format!("n{}", j + 1));
        b.add_client(node);
        requests.push(a);
        capacities.push(a);
    }
    // The extra unit client directly below the root.
    b.add_client(root);
    requests.push(1);
    ProblemInstance::replica_cost(b.build().expect("valid construction"), requests, capacities)
}

/// [`figure1`] with the link `s1 → s2` bounded at `uplink_bw` requests.
///
/// Hand-checkable optima under **Multiple** (capacity 1 per node,
/// unit storage costs):
///
/// * `(1, 1)` clients/requests: one replica suffices wherever the
///   single request is served — cost 1 for any `uplink_bw` (with
///   `uplink_bw = 0` the replica is *forced* onto `s1`).
/// * `(2, 1)`: the two requests need both nodes (cost 2), and one of
///   them must cross the link — so `uplink_bw = 0` is infeasible while
///   `uplink_bw >= 1` keeps cost 2.
pub fn figure1_bandwidth(
    num_clients: usize,
    requests_per_client: u64,
    uplink_bw: u64,
) -> ProblemInstance {
    let base = figure1(num_clients, requests_per_client);
    let tree = base.tree_arc();
    let requests: Vec<u64> = tree.client_ids().map(|c| base.requests(c)).collect();
    // Node index 1 is s1 (the deeper node); its uplink is the bounded one.
    ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(vec![1, 1])
        .storage_costs(vec![1, 1])
        .node_link_bandwidths(vec![None, Some(uplink_bw)])
        .kind(base.kind())
        .build()
}

/// The bandwidth bottleneck example implied by Section 2.2's remark: a
/// chain `root (W = 10, s = 10) → mid (W = 3, s = 3)` with one client
/// of 4 requests below `mid`, and the link `mid → root` bounded at
/// `uplink_bw`.
///
/// Exact **Multiple** optima, by hand:
///
/// * `uplink_bw >= 4`: everything can flow up — serve all 4 at the
///   root, cost **10** (3 at mid + 1 at root would cost 13);
/// * `1 <= uplink_bw <= 3`: at least `4 − uplink_bw >= 1` requests must
///   stay at mid, so both replicas are bought: cost **13**;
/// * `uplink_bw = 0`: all 4 requests must be served at mid, whose
///   capacity is 3 — **infeasible**.
///
/// Under **Upwards**/**Closest** the client is served by a single
/// server, so `uplink_bw >= 4` gives cost 10 and any smaller bound is
/// infeasible (mid alone cannot hold 4).
///
/// The *rational* LP bound is `4` for every feasible `uplink_bw` (serve
/// at unit cost-per-request either way), exhibiting the integrality gap
/// the mixed bound closes.
pub fn bandwidth_bottleneck(uplink_bw: u64) -> ProblemInstance {
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, "root");
    let mid = b.add_node(root);
    b.set_node_label(mid, "mid");
    b.add_client(mid);
    ProblemInstance::builder(b.build().expect("valid construction"))
        .requests(vec![4])
        .capacities(vec![10, 3])
        .storage_costs(vec![10, 3])
        .node_link_bandwidths(vec![None, Some(uplink_bw)])
        .build()
}

/// The two-object coupling example (Section 8.1): `root (W = 10)` →
/// `hub (W = 4)`, one client per object below the hub, each issuing 4
/// requests. Replica prices: object 0 costs 10 at the root and **1** at
/// the hub; object 1 costs **6** at the root and 5 at the hub.
///
/// Alone, each object would sit at its cheaper node. Together the hub's
/// shared capacity 4 only fits one of them, and the cheapest split
/// serves object 0 at the hub and object 1 at the root:
/// exact optimum **1 + 6 = 7** (the alternatives: both split across
/// root+hub ≥ 11, object 1 at hub + object 0 at root = 15).
///
/// The rational relaxation prices requests at `cost/W` per unit —
/// object 0: ¼ at hub, 1 at root; object 1: 5⁄4 at hub, 6⁄10 at root —
/// so the LP bound is `4·¼ + 4·0.6 = 3.4`.
pub fn multi_object_coupling() -> MultiObjectProblem {
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    b.set_node_label(root, "root");
    let hub = b.add_node(root);
    b.set_node_label(hub, "hub");
    b.add_client(hub); // client 0: object 0
    b.add_client(hub); // client 1: object 1
    MultiObjectProblem::new(
        b.build().expect("valid construction"),
        vec![vec![4, 0], vec![0, 4]],
        vec![10, 4],
        vec![vec![10, 1], vec![6, 5]],
    )
}

/// [`multi_object_coupling`] with the shared link `hub → root` bounded
/// at `uplink_bw`. Of the 8 requests, at most 4 are served at the hub,
/// so at least 4 must cross the link:
///
/// * `uplink_bw >= 4`: the optimum of [`multi_object_coupling`] (serve
///   object 0 at the hub, send object 1 up) survives — cost **7**;
/// * `uplink_bw <= 3`: at most `4 + uplink_bw < 8` requests can be
///   served anywhere — **infeasible**, for the exact model and the
///   rational relaxation alike.
pub fn multi_object_shared_link(uplink_bw: u64) -> MultiObjectProblem {
    multi_object_coupling().with_link_bandwidths(vec![None, None], vec![None, Some(uplink_bw)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_core::bounds::replica_counting_lower_bound;
    use rp_core::exact::optimal_cost;
    use rp_core::Policy;

    #[test]
    fn figure1_feasibility_pattern() {
        // (a): everyone succeeds with cost 1.
        let a = figure1(1, 1);
        for policy in Policy::ALL {
            assert_eq!(optimal_cost(&a, policy), Some(1));
        }
        // (b): Closest fails, the others need 2 replicas.
        let b = figure1(2, 1);
        assert_eq!(optimal_cost(&b, Policy::Closest), None);
        assert_eq!(optimal_cost(&b, Policy::Upwards), Some(2));
        assert_eq!(optimal_cost(&b, Policy::Multiple), Some(2));
        // (c): only Multiple succeeds.
        let c = figure1(1, 2);
        assert_eq!(optimal_cost(&c, Policy::Closest), None);
        assert_eq!(optimal_cost(&c, Policy::Upwards), None);
        assert_eq!(optimal_cost(&c, Policy::Multiple), Some(2));
    }

    #[test]
    fn figure2_upwards_gap() {
        let p = figure2(2);
        assert_eq!(optimal_cost(&p, Policy::Upwards), Some(3));
        assert_eq!(optimal_cost(&p, Policy::Closest), Some(4)); // n + 2
    }

    #[test]
    fn figure3_multiple_gap() {
        let n = 2;
        let p = figure3(n);
        assert_eq!(optimal_cost(&p, Policy::Multiple), Some(n + 1));
        assert_eq!(optimal_cost(&p, Policy::Upwards), Some(2 * n));
    }

    #[test]
    fn figure4_heterogeneous_gap() {
        let (n, k) = (4, 10);
        let p = figure4(n, k);
        assert_eq!(optimal_cost(&p, Policy::Multiple), Some(2 * n));
        // Under Upwards the (n+1)-request client fits no small server, so
        // any solution must buy the expensive root: the optimum is K·n
        // (the paper's narrative places an additional replica on s1 and
        // quotes (K+1)·n, but the gap to Multiple is unbounded in K
        // either way).
        assert_eq!(optimal_cost(&p, Policy::Upwards), Some(k * n));
        assert!(optimal_cost(&p, Policy::Upwards).unwrap() > 2 * n);
    }

    #[test]
    fn figure5_lower_bound_gap() {
        let (n, w) = (4, 8);
        let p = figure5(n, w);
        assert_eq!(replica_counting_lower_bound(&p), Some(2));
        for policy in Policy::ALL {
            assert_eq!(optimal_cost(&p, policy), Some(n + 1), "policy {policy}");
        }
    }

    #[test]
    fn figure7_encodes_three_partition() {
        // 3-PARTITION instance with a solution: (5,4,3), (5,4,3) — B = 12.
        let yes = figure7(&[5, 4, 3, 5, 4, 3], 12);
        assert_eq!(optimal_cost(&yes, Policy::Upwards), Some(2));
        // A total of exactly m·B that cannot be split into two groups of
        // sum B: Upwards (whole clients) is infeasible, while Multiple
        // (splitting allowed) still fills both servers exactly.
        let no = figure7(&[7, 7, 7, 1, 1, 1], 12);
        assert_eq!(optimal_cost(&no, Policy::Upwards), None);
        assert_eq!(optimal_cost(&no, Policy::Multiple), Some(2));
    }

    #[test]
    fn figure8_encodes_two_partition() {
        // {3, 5, 2} has a subset summing to 5 = S/2: cost S + 1 = 11.
        let yes = figure8(&[3, 5, 2]);
        assert_eq!(optimal_cost(&yes, Policy::Closest), Some(11));
        assert_eq!(optimal_cost(&yes, Policy::Multiple), Some(11));
        // {1, 1, 8} has no subset summing to 5, so the best achievable
        // cost is strictly larger than S + 1 = 11.
        let no = figure8(&[1, 1, 8]);
        let closest = optimal_cost(&no, Policy::Closest).unwrap();
        assert!(closest > 11);
    }

    #[test]
    fn constructions_have_the_documented_shapes() {
        let p = figure2(3);
        assert_eq!(p.tree().num_nodes(), 2 * 3 + 2);
        assert_eq!(p.tree().num_clients(), 2 * 3 + 1);
        let p = figure3(3);
        assert_eq!(p.tree().num_nodes(), (3 * 3 + 1) as usize);
        let p = figure5(5, 10);
        assert_eq!(p.tree().num_nodes(), 6);
        let p = figure7(&[2, 2, 2, 3, 1, 2], 6);
        assert_eq!(p.tree().num_nodes(), 2);
        assert_eq!(p.tree().num_clients(), 6);
        let p = figure8(&[2, 4, 6]);
        assert_eq!(p.tree().num_nodes(), 4);
        assert_eq!(p.tree().num_clients(), 4);
    }
}
