//! # rp-workloads — workload and platform generators
//!
//! Everything needed to *populate* replica-placement experiments:
//!
//! * [`tree_gen`] — seeded random distribution trees in several shape
//!   families (the paper only says "randomly generated trees with
//!   15 ≤ s ≤ 400");
//! * [`platform`] — homogeneous / heterogeneous server capacities and
//!   client request loads targeting a given load factor λ (the paper's
//!   experimental knob, Section 7.2);
//! * [`paper_examples`] — the hand-crafted instances of Figures 1–5 and
//!   the NP-completeness gadgets of Figures 7–8;
//! * [`scenarios`] — the problem-variant families: bandwidth-constrained
//!   links (heterogeneous and deliberately ill-scaled, up to the
//!   `s = 2000` class) and multi-object workloads with shared
//!   capacities and links;
//! * [`failures`] — seeded failure-trace generators (single crashes,
//!   link cuts, mixed traces) for the chaos and resilience sweeps.
//!
//! ```
//! use rp_workloads::tree_gen::{generate_tree, TreeGenConfig, TreeShape};
//! use rp_workloads::platform::{generate_problem, PlatformKind, WorkloadConfig};
//!
//! let tree = generate_tree(
//!     &TreeGenConfig::with_problem_size(40, TreeShape::RandomAttachment),
//!     7,
//! );
//! let problem = generate_problem(
//!     tree,
//!     &WorkloadConfig::new(PlatformKind::default_homogeneous(), 0.3),
//!     7,
//! );
//! assert!((problem.load_factor() - 0.3).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Predates the workspace ban on panicking accessors (see clippy.toml);
// new long-lived code (rp-online, rp-obs) enforces it.
#![allow(clippy::disallowed_methods)]

pub mod churn;
pub mod failures;
pub mod paper_examples;
pub mod platform;
pub mod scenarios;
pub mod tree_gen;

pub use churn::{churn_trace, recovery_for, ChurnConfig, TimedDelta};
pub use failures::{failure_trace, sample_link_failure, sample_node_failure};
pub use platform::{
    generate_problem, paper_scale_instance, paper_scale_instance_sized, PlatformKind,
    WorkloadConfig, PAPER_SCALE_S,
};
pub use scenarios::{
    bandwidth_instance, bandwidth_scale_instance, feasible_bandwidth_instance,
    ill_scaled_bandwidth_instance, multi_object_bandwidth_instance, multi_object_instance,
    BANDWIDTH_SCALE_S,
};
pub use tree_gen::{generate_tree, TreeGenConfig, TreeShape};
