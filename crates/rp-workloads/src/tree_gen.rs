//! Seeded random tree generators.
//!
//! The paper evaluates the heuristics on "randomly generated trees" with
//! problem sizes 15 ≤ s ≤ 400 and does not pin down the generator, so
//! this module provides several reasonable families. All generators are
//! deterministic given a seed, which keeps experiment runs reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_tree::{NodeId, TreeBuilder, TreeNetwork};

/// The shape family of a generated tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeShape {
    /// Every new internal node or client attaches to a uniformly random
    /// existing internal node (preferential to nothing — a classic
    /// "random recursive tree"). Produces bushy, shallow-ish trees.
    RandomAttachment,
    /// Like `RandomAttachment` but the number of children per node is
    /// capped, which yields deeper trees.
    BoundedDegree {
        /// Maximum number of children (internal nodes + clients) a node
        /// may receive.
        max_children: usize,
    },
    /// A single chain of internal nodes with clients sprinkled along it
    /// (the worst case for the Closest policy).
    Linear,
    /// A complete `arity`-ary tree of internal nodes with clients at the
    /// deepest level.
    Balanced {
        /// Branching factor of the internal tree.
        arity: usize,
    },
}

/// Parameters of a generated tree.
#[derive(Clone, Copy, Debug)]
pub struct TreeGenConfig {
    /// Number of internal nodes `|N|`.
    pub num_nodes: usize,
    /// Number of clients `|C|`.
    pub num_clients: usize,
    /// Shape family.
    pub shape: TreeShape,
}

impl TreeGenConfig {
    /// A configuration with the given problem size `s`, giving two
    /// thirds of the vertices to clients (distribution trees have many
    /// more leaves than internal hubs; this also keeps individual client
    /// loads small relative to server capacities, as in the paper's
    /// experiments where even heavily loaded platforms remain solvable).
    pub fn with_problem_size(problem_size: usize, shape: TreeShape) -> Self {
        let num_nodes = (problem_size / 3).max(1);
        let num_clients = (problem_size - num_nodes).max(1);
        TreeGenConfig {
            num_nodes,
            num_clients,
            shape,
        }
    }
}

/// Generates a random tree according to `config`, deterministically in
/// `seed`.
pub fn generate_tree(config: &TreeGenConfig, seed: u64) -> TreeNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_tree_with_rng(config, &mut rng)
}

/// [`generate_tree`] with an externally managed RNG.
pub fn generate_tree_with_rng<R: Rng>(config: &TreeGenConfig, rng: &mut R) -> TreeNetwork {
    generate_tree_into_with_rng(config, rng, None)
}

/// [`generate_tree_with_rng`] recycling a previous tree's derived-array
/// allocations (see [`rp_tree::TreeBuilder::build_into`]): the sweep
/// harness passes each trial's retired tree back in, so per-trial tree
/// construction stays allocation-light. Passing `None` is equivalent to
/// [`generate_tree_with_rng`].
pub fn generate_tree_into_with_rng<R: Rng>(
    config: &TreeGenConfig,
    rng: &mut R,
    recycled: Option<TreeNetwork>,
) -> TreeNetwork {
    assert!(config.num_nodes >= 1, "a tree needs at least a root");
    assert!(config.num_clients >= 1, "a tree needs at least one client");
    let builder = match config.shape {
        TreeShape::RandomAttachment => random_attachment(config, rng, usize::MAX),
        TreeShape::BoundedDegree { max_children } => {
            random_attachment(config, rng, max_children.max(1))
        }
        TreeShape::Linear => linear(config, rng),
        TreeShape::Balanced { arity } => balanced(config, rng, arity.max(2)),
    };
    match recycled {
        Some(tree) => builder.build_into(tree),
        None => builder.build(),
    }
    .expect("generated trees are well-formed")
}

fn random_attachment<R: Rng>(
    config: &TreeGenConfig,
    rng: &mut R,
    max_children: usize,
) -> TreeBuilder {
    let mut builder = TreeBuilder::with_capacity(config.num_nodes, config.num_clients);
    let root = builder.add_root();
    let mut nodes = vec![root];
    let mut child_count = vec![0usize; config.num_nodes];
    let mut node_children = vec![0usize; config.num_nodes];

    for _ in 1..config.num_nodes {
        let parent = pick_parent(&nodes, &child_count, max_children, rng);
        let node = builder.add_node(parent);
        child_count[parent.index()] += 1;
        node_children[parent.index()] += 1;
        nodes.push(node);
    }
    // Clients attach preferentially to the *leaf* internal nodes: real
    // distribution trees serve their customers at the edge, and this is
    // also what keeps the paper's top-down heuristics meaningful (a hub
    // with both subtrees and many direct clients is an unusual shape).
    let leaf_nodes: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| node_children[n.index()] == 0)
        .collect();
    for _ in 0..config.num_clients {
        let prefer_leaf = !leaf_nodes.is_empty() && rng.gen_bool(0.75);
        let parent = if prefer_leaf {
            let candidates: Vec<NodeId> = leaf_nodes
                .iter()
                .copied()
                .filter(|n| child_count[n.index()] < max_children)
                .collect();
            if candidates.is_empty() {
                pick_parent(&nodes, &child_count, max_children, rng)
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            }
        } else {
            pick_parent(&nodes, &child_count, max_children, rng)
        };
        builder.add_client(parent);
        child_count[parent.index()] += 1;
    }
    builder
}

fn pick_parent<R: Rng>(
    nodes: &[NodeId],
    child_count: &[usize],
    max_children: usize,
    rng: &mut R,
) -> NodeId {
    // Prefer nodes that still have room; if every node is full (only
    // possible with a tight bound), fall back to a uniform choice so the
    // generator always terminates.
    let available: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| child_count[n.index()] < max_children)
        .collect();
    if available.is_empty() {
        nodes[rng.gen_range(0..nodes.len())]
    } else {
        available[rng.gen_range(0..available.len())]
    }
}

fn linear<R: Rng>(config: &TreeGenConfig, rng: &mut R) -> TreeBuilder {
    let mut builder = TreeBuilder::with_capacity(config.num_nodes, config.num_clients);
    let root = builder.add_root();
    let mut chain = vec![root];
    let mut current = root;
    for _ in 1..config.num_nodes {
        current = builder.add_node(current);
        chain.push(current);
    }
    for _ in 0..config.num_clients {
        let parent = chain[rng.gen_range(0..chain.len())];
        builder.add_client(parent);
    }
    builder
}

fn balanced<R: Rng>(config: &TreeGenConfig, rng: &mut R, arity: usize) -> TreeBuilder {
    let mut builder = TreeBuilder::with_capacity(config.num_nodes, config.num_clients);
    let root = builder.add_root();
    let mut nodes = vec![root];
    // Fill level by level: node i's parent is node (i - 1) / arity.
    for i in 1..config.num_nodes {
        let parent = nodes[(i - 1) / arity];
        nodes.push(builder.add_node(parent));
    }
    // Clients attach to the deepest third of the internal nodes (leaf-ish
    // nodes), uniformly at random.
    let depth_sorted = {
        let mut v = nodes.clone();
        v.sort_by_key(|n| std::cmp::Reverse(n.index()));
        v
    };
    let candidate_count = (depth_sorted.len().div_ceil(3)).max(1);
    let candidates = &depth_sorted[..candidate_count];
    for _ in 0..config.num_clients {
        let parent = candidates[rng.gen_range(0..candidates.len())];
        builder.add_client(parent);
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeStats;

    fn all_shapes() -> Vec<TreeShape> {
        vec![
            TreeShape::RandomAttachment,
            TreeShape::BoundedDegree { max_children: 3 },
            TreeShape::Linear,
            TreeShape::Balanced { arity: 2 },
        ]
    }

    #[test]
    fn generated_trees_have_the_requested_sizes() {
        for shape in all_shapes() {
            let config = TreeGenConfig {
                num_nodes: 17,
                num_clients: 23,
                shape,
            };
            let tree = generate_tree(&config, 42);
            assert_eq!(tree.num_nodes(), 17, "{shape:?}");
            assert_eq!(tree.num_clients(), 23, "{shape:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for shape in all_shapes() {
            let config = TreeGenConfig {
                num_nodes: 12,
                num_clients: 20,
                shape,
            };
            let a = generate_tree(&config, 7);
            let b = generate_tree(&config, 7);
            let c = generate_tree(&config, 8);
            assert_eq!(a, b, "{shape:?}");
            // Different seeds should (essentially always) differ for the
            // random families; Linear/Balanced may coincide on the node
            // skeleton but client attachment is random too.
            if a == c {
                // Tolerated but exceedingly unlikely; fail loudly so a
                // broken RNG plumbing is noticed.
                panic!("seeds 7 and 8 produced identical trees for {shape:?}");
            }
        }
    }

    #[test]
    fn recycled_generation_matches_fresh_generation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut recycled: Option<TreeNetwork> = None;
        for (i, shape) in all_shapes().into_iter().enumerate() {
            let config = TreeGenConfig {
                num_nodes: 8 + i,
                num_clients: 14 + 2 * i,
                shape,
            };
            let fresh = generate_tree(&config, 77);
            let mut rng = StdRng::seed_from_u64(77);
            let reused = generate_tree_into_with_rng(&config, &mut rng, recycled.take());
            assert_eq!(fresh, reused, "{shape:?}");
            recycled = Some(reused);
        }
    }

    #[test]
    fn problem_size_helper_gives_two_thirds_to_clients() {
        let config = TreeGenConfig::with_problem_size(99, TreeShape::RandomAttachment);
        assert_eq!(config.num_nodes + config.num_clients, 99);
        assert_eq!(config.num_nodes, 33);
        assert_eq!(config.num_clients, 66);
        let tree = generate_tree(&config, 1);
        assert_eq!(tree.problem_size(), 99);
    }

    #[test]
    fn linear_trees_are_chains() {
        let config = TreeGenConfig {
            num_nodes: 10,
            num_clients: 15,
            shape: TreeShape::Linear,
        };
        let tree = generate_tree(&config, 3);
        let stats = TreeStats::compute(&tree);
        // Every internal node has at most one internal child.
        for node in tree.node_ids() {
            assert!(tree.child_nodes(node).len() <= 1);
        }
        assert!(stats.depth >= 9);
    }

    #[test]
    fn bounded_degree_respects_the_cap() {
        let config = TreeGenConfig {
            num_nodes: 30,
            num_clients: 40,
            shape: TreeShape::BoundedDegree { max_children: 3 },
        };
        let tree = generate_tree(&config, 11);
        for node in tree.node_ids() {
            let degree = tree.child_nodes(node).len() + tree.child_clients(node).len();
            assert!(degree <= 3, "node {node} has degree {degree}");
        }
    }

    #[test]
    fn balanced_trees_attach_clients_to_deep_nodes() {
        let config = TreeGenConfig {
            num_nodes: 15,
            num_clients: 20,
            shape: TreeShape::Balanced { arity: 2 },
        };
        let tree = generate_tree(&config, 5);
        let max_node_depth = tree.node_ids().map(|n| tree.node_depth(n)).max().unwrap();
        // All clients hang from the deeper part of the tree.
        for client in tree.client_ids() {
            assert!(tree.client_depth(client) >= max_node_depth / 2);
        }
    }

    #[test]
    fn tiny_configurations_still_work() {
        for shape in all_shapes() {
            let config = TreeGenConfig {
                num_nodes: 1,
                num_clients: 1,
                shape,
            };
            let tree = generate_tree(&config, 0);
            assert_eq!(tree.problem_size(), 2);
        }
    }
}
