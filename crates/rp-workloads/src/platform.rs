//! Platform (server capacity) and request-load generation.
//!
//! The paper's experimental plan (Section 7.2) is parameterised by the
//! load factor `λ = Σ r_i / Σ W_j`; for a target λ this module draws
//! node capacities (homogeneous or heterogeneous) and client request
//! counts whose totals hit the target closely.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::{ProblemInstance, ProblemKind};
use rp_tree::TreeNetwork;

use std::sync::Arc;

/// How server capacities are drawn.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PlatformKind {
    /// Every node gets the same capacity (Replica Counting experiments).
    Homogeneous {
        /// The shared capacity `W`.
        capacity: u64,
    },
    /// Capacities drawn uniformly from `[min, max]` (Replica Cost
    /// experiments, with `s_j = W_j`).
    HeterogeneousUniform {
        /// Smallest possible capacity.
        min: u64,
        /// Largest possible capacity.
        max: u64,
    },
}

impl PlatformKind {
    /// The defaults used by the experiment harness: `W = 100` for the
    /// homogeneous platform.
    pub fn default_homogeneous() -> Self {
        PlatformKind::Homogeneous { capacity: 100 }
    }

    /// The defaults used by the experiment harness: capacities uniform
    /// in `[50, 150]` for the heterogeneous platform (same mean as the
    /// homogeneous one, so the two experiments are comparable).
    pub fn default_heterogeneous() -> Self {
        PlatformKind::HeterogeneousUniform { min: 50, max: 150 }
    }
}

/// Parameters of a generated problem instance (given a tree).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Server capacity model.
    pub platform: PlatformKind,
    /// Target load factor `λ`.
    pub lambda: f64,
    /// Optional uniform QoS bound (hops) applied to every client.
    pub qos_hops: Option<u32>,
}

impl WorkloadConfig {
    /// A no-QoS workload with the given platform and load factor.
    pub fn new(platform: PlatformKind, lambda: f64) -> Self {
        WorkloadConfig {
            platform,
            lambda,
            qos_hops: None,
        }
    }
}

/// The paper's largest problem size: `s = |C| + |N| = 400` (Section 7.2
/// sweeps 15 ≤ s ≤ 400). The revised-simplex LP engine is what makes
/// the LP lower bound tractable at this scale.
pub const PAPER_SCALE_S: usize = 400;

/// Generates a full **paper-scale** instance: a random-attachment tree
/// of problem size [`PAPER_SCALE_S`] decorated with the given platform
/// at load factor `lambda`, deterministically in `seed`. This is the
/// instance family the `s = 400` sweep scenario and the
/// `BENCH_revised.json` timings use.
pub fn paper_scale_instance(platform: PlatformKind, lambda: f64, seed: u64) -> ProblemInstance {
    paper_scale_instance_sized(PAPER_SCALE_S, platform, lambda, seed)
}

/// [`paper_scale_instance`] with an explicit problem size (useful for
/// scaling studies below and beyond `s = 400`).
pub fn paper_scale_instance_sized(
    problem_size: usize,
    platform: PlatformKind,
    lambda: f64,
    seed: u64,
) -> ProblemInstance {
    use crate::tree_gen::{generate_tree, TreeGenConfig, TreeShape};
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(problem_size, TreeShape::RandomAttachment),
        seed,
    );
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0x5CA1E)
}

/// Decorates `tree` with capacities and requests matching `config`,
/// deterministically in `seed`.
pub fn generate_problem(
    tree: impl Into<Arc<TreeNetwork>>,
    config: &WorkloadConfig,
    seed: u64,
) -> ProblemInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_problem_with_rng(tree, config, &mut rng)
}

/// [`generate_problem`] with an externally managed RNG.
pub fn generate_problem_with_rng<R: Rng>(
    tree: impl Into<Arc<TreeNetwork>>,
    config: &WorkloadConfig,
    rng: &mut R,
) -> ProblemInstance {
    let tree: Arc<TreeNetwork> = tree.into();
    let capacities = draw_capacities(&tree, config, rng);
    finish_problem(tree, config, capacities, rng)
}

/// [`generate_problem_with_rng`] with **split RNG streams**: the
/// platform capacities (and therefore the storage costs) come from
/// `platform_rng` while the λ-dependent request distribution comes from
/// `demand_rng`. The sweep runner keys the first stream to the tree and
/// the second to the (tree, λ) pair, so sibling trials of one tree
/// under different load factors share their **entire constraint
/// matrix** — only right-hand sides and bounds differ — which is what
/// lets the LP workspace warm-start across them.
pub fn generate_problem_split_rng<R1: Rng, R2: Rng>(
    tree: impl Into<Arc<TreeNetwork>>,
    config: &WorkloadConfig,
    platform_rng: &mut R1,
    demand_rng: &mut R2,
) -> ProblemInstance {
    let tree: Arc<TreeNetwork> = tree.into();
    let capacities = draw_capacities(&tree, config, platform_rng);
    finish_problem(tree, config, capacities, demand_rng)
}

/// Draws the per-node capacities of the platform.
fn draw_capacities<R: Rng>(tree: &TreeNetwork, config: &WorkloadConfig, rng: &mut R) -> Vec<u64> {
    match config.platform {
        PlatformKind::Homogeneous { capacity } => vec![capacity; tree.num_nodes()],
        PlatformKind::HeterogeneousUniform { min, max } => {
            assert!(min <= max, "capacity range must be ordered");
            (0..tree.num_nodes())
                .map(|_| rng.gen_range(min..=max))
                .collect()
        }
    }
}

/// Draws the request distribution and assembles the instance.
fn finish_problem<R: Rng>(
    tree: Arc<TreeNetwork>,
    config: &WorkloadConfig,
    capacities: Vec<u64>,
    rng: &mut R,
) -> ProblemInstance {
    assert!(config.lambda > 0.0, "the load factor must be positive");
    let total_capacity: u64 = capacities.iter().sum();

    // Requests: draw each client's share uniformly in (0, 2], then scale
    // so that the total matches λ · ΣW as closely as integer rounding
    // allows (each client issues at least one request).
    let num_clients = tree.num_clients();
    let target_total = (config.lambda * total_capacity as f64).round().max(1.0);
    let weights: Vec<f64> = (0..num_clients)
        .map(|_| rng.gen_range(0.05..=1.0))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut requests: Vec<u64> = weights
        .iter()
        .map(|w| ((w / weight_sum) * target_total).round().max(1.0) as u64)
        .collect();

    // Fix rounding drift so Σ r_i is exactly the target when possible.
    let mut drift = requests.iter().sum::<u64>() as i64 - target_total as i64;
    let mut index = 0usize;
    while drift != 0 && num_clients > 0 {
        let slot = index % num_clients;
        if drift > 0 {
            if requests[slot] > 1 {
                requests[slot] -= 1;
                drift -= 1;
            }
        } else {
            requests[slot] += 1;
            drift += 1;
        }
        index += 1;
        if index > 10 * num_clients.max(1) && drift > 0 {
            // Every client is already at the minimum of one request.
            break;
        }
    }

    let kind = match config.platform {
        PlatformKind::Homogeneous { .. } => ProblemKind::ReplicaCounting,
        PlatformKind::HeterogeneousUniform { .. } => ProblemKind::ReplicaCost,
    };
    let storage_costs = match kind {
        // The paper minimises the *number* of replicas on homogeneous
        // platforms; unit costs express exactly that.
        ProblemKind::ReplicaCounting => vec![1; tree.num_nodes()],
        ProblemKind::ReplicaCost => capacities.clone(),
    };

    let mut builder = ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities)
        .storage_costs(storage_costs)
        .kind(kind);
    if let Some(hops) = config.qos_hops {
        builder = builder.uniform_qos(hops);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_gen::{generate_tree, TreeGenConfig, TreeShape};

    fn sample_tree() -> TreeNetwork {
        generate_tree(
            &TreeGenConfig::with_problem_size(60, TreeShape::RandomAttachment),
            99,
        )
    }

    #[test]
    fn homogeneous_platform_hits_the_target_lambda() {
        let tree = sample_tree();
        for lambda in [0.1, 0.5, 0.9] {
            let config = WorkloadConfig::new(PlatformKind::default_homogeneous(), lambda);
            let p = generate_problem(tree.clone(), &config, 7);
            assert!(p.is_homogeneous());
            assert_eq!(p.kind(), ProblemKind::ReplicaCounting);
            let achieved = p.load_factor();
            assert!(
                (achieved - lambda).abs() < 0.05,
                "target λ={lambda}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn heterogeneous_platform_hits_the_target_lambda() {
        let tree = sample_tree();
        for lambda in [0.2, 0.6] {
            let config = WorkloadConfig::new(PlatformKind::default_heterogeneous(), lambda);
            let p = generate_problem(tree.clone(), &config, 11);
            assert_eq!(p.kind(), ProblemKind::ReplicaCost);
            let achieved = p.load_factor();
            assert!(
                (achieved - lambda).abs() < 0.05,
                "target λ={lambda}, achieved {achieved}"
            );
            // Capacities within the configured range, cost = capacity.
            for node in p.tree().node_ids().collect::<Vec<_>>() {
                assert!(p.capacity(node) >= 50 && p.capacity(node) <= 150);
                assert_eq!(p.capacity(node), p.storage_cost(node));
            }
        }
    }

    #[test]
    fn homogeneous_counting_instances_have_unit_costs() {
        let tree = sample_tree();
        let config = WorkloadConfig::new(PlatformKind::default_homogeneous(), 0.4);
        let p = generate_problem(tree, &config, 3);
        for node in p.tree().node_ids().collect::<Vec<_>>() {
            assert_eq!(p.storage_cost(node), 1);
        }
    }

    #[test]
    fn every_client_issues_at_least_one_request() {
        let tree = sample_tree();
        let config = WorkloadConfig::new(PlatformKind::default_homogeneous(), 0.1);
        let p = generate_problem(tree, &config, 5);
        for client in p.tree().client_ids().collect::<Vec<_>>() {
            assert!(p.requests(client) >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let tree = sample_tree();
        let config = WorkloadConfig::new(PlatformKind::default_heterogeneous(), 0.5);
        let a = generate_problem(tree.clone(), &config, 21);
        let b = generate_problem(tree.clone(), &config, 21);
        let clients: Vec<_> = a.tree().client_ids().collect();
        for &c in &clients {
            assert_eq!(a.requests(c), b.requests(c));
        }
        for n in a.tree().node_ids().collect::<Vec<_>>() {
            assert_eq!(a.capacity(n), b.capacity(n));
        }
    }

    #[test]
    fn qos_option_is_applied_uniformly() {
        let tree = sample_tree();
        let config = WorkloadConfig {
            platform: PlatformKind::default_homogeneous(),
            lambda: 0.3,
            qos_hops: Some(3),
        };
        let p = generate_problem(tree, &config, 17);
        assert!(p.has_qos());
        for client in p.tree().client_ids().collect::<Vec<_>>() {
            assert_eq!(p.qos(client), Some(3));
        }
    }

    #[test]
    fn paper_scale_instances_have_the_paper_size() {
        let p = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.5, 42);
        assert_eq!(p.tree().problem_size(), PAPER_SCALE_S);
        assert!((p.load_factor() - 0.5).abs() < 0.05);
        let small = paper_scale_instance_sized(60, PlatformKind::default_homogeneous(), 0.3, 7);
        assert_eq!(small.tree().problem_size(), 60);
    }

    #[test]
    #[should_panic(expected = "load factor must be positive")]
    fn zero_lambda_is_rejected() {
        let tree = sample_tree();
        let config = WorkloadConfig::new(PlatformKind::default_homogeneous(), 0.0);
        let _ = generate_problem(tree, &config, 0);
    }
}
