//! Minimal JSON rendering helpers — just enough for the metrics
//! export, the JSONL event sink and the chrome-trace writer. No
//! parsing, no dependencies, no allocation beyond the output buffer.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (`null` for NaN/infinite values, which
/// JSON cannot represent).
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A scalar value for the structured event sink.
#[derive(Clone, Copy, Debug)]
pub enum JsonValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (NaN/inf render as `null`).
    F64(f64),
    /// String (escaped on render).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl JsonValue<'_> {
    /// Renders the value into `out` as a JSON scalar.
    pub fn render(&self, out: &mut String) {
        match *self {
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => push_json_f64(out, v),
            JsonValue::Str(s) => push_json_string(out, s),
            JsonValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_control_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(' ');
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn scalar_values_render_as_json() {
        let mut out = String::new();
        for (value, expect) in [
            (JsonValue::U64(7), "7"),
            (JsonValue::I64(-3), "-3"),
            (JsonValue::F64(1.5), "1.5"),
            (JsonValue::Str("x"), "\"x\""),
            (JsonValue::Bool(true), "true"),
        ] {
            out.clear();
            value.render(&mut out);
            assert_eq!(out, expect);
        }
    }
}
