//! Fixed-bucket latency histogram with exact nearest-rank percentile
//! extraction.
//!
//! Buckets follow a 1–2–5 logarithmic series in microseconds from 1 µs
//! to 100 s, plus one overflow bucket. Recording is lock-free (one
//! relaxed `fetch_add` per sample plus min/max maintenance) so worker
//! threads of the λ-sharded pool can share a histogram, and two
//! histograms merge bucket-wise — the per-worker → global aggregation
//! path.
//!
//! Percentiles use the **nearest-rank** rule: for `N` recorded samples
//! the `q`-quantile is the value at rank `⌈q·N⌉` (1-based, clamped to
//! `[1, N]`). Rank selection is exact; the reported *value* is the
//! upper edge of the bucket holding that rank, clamped to the true
//! recorded `[min, max]` so degenerate distributions (all samples
//! equal) come back exact. [`nearest_rank`] applies the same rule to a
//! raw sorted sample slice — every percentile in the workspace routes
//! through one of these two entry points.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper (inclusive) bucket edges in microseconds: a 1–2–5 series over
/// eight decades, 1 µs ..= 100 s.
pub const BUCKET_EDGES_US: [u64; 25] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

/// Number of buckets (the edges plus one overflow bucket).
pub const BUCKET_COUNT: usize = BUCKET_EDGES_US.len() + 1;

/// Exact nearest-rank quantile of an already **sorted** slice: the
/// value at 1-based rank `⌈q·N⌉`, clamped to `[1, N]`. Returns 0.0 for
/// an empty slice.
///
/// NaN samples have no rank: one NaN in the input silently corrupts
/// whatever comparator sorted it, and with it the reported p99. Debug
/// builds reject NaN outright; release builds skip NaN samples and
/// rank the remaining values (`total_cmp`-style sorts place NaN last,
/// so those still form a sorted prefix). Callers feeding raw
/// wall-clock deltas (e.g. `rp-experiments::failures`) get a sane
/// percentile either way.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(
        sorted.iter().all(|v| !v.is_nan()),
        "nearest_rank: NaN sample in quantile input"
    );
    let n = sorted.iter().filter(|v| !v.is_nan()).count();
    if n == 0 {
        return 0.0;
    }
    let rank = (q * n as f64).ceil() as usize;
    let rank = rank.clamp(1, n);
    let mut seen = 0usize;
    for &v in sorted {
        if !v.is_nan() {
            seen += 1;
            if seen == rank {
                return v;
            }
        }
    }
    unreachable!("rank {rank} <= non-NaN count {n}")
}

/// A thread-safe fixed-bucket histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value_us` (last bucket = overflow).
    fn bucket_index(value_us: u64) -> usize {
        BUCKET_EDGES_US
            .iter()
            .position(|&edge| value_us <= edge)
            .unwrap_or(BUCKET_EDGES_US.len())
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, value_us: u64) {
        self.buckets[Self::bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
        self.min.fetch_min(value_us, Ordering::Relaxed);
        self.max.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Records a duration given in (fractional) seconds.
    pub fn record_seconds(&self, seconds: f64) {
        self.record_us((seconds * 1e6).round().max(0.0) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, µs (0 when empty).
    pub fn min_us(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX {
            0
        } else {
            min
        }
    }

    /// Largest recorded sample, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of the recorded samples, µs (exact — derived
    /// from the running sum, not the buckets). 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us() as f64 / count as f64
        }
    }

    /// Nearest-rank `q`-quantile, µs. The rank `⌈q·N⌉` (clamped to
    /// `[1, N]`) is exact; the reported value is the upper edge of the
    /// bucket containing that rank, clamped to the recorded
    /// `[min, max]`. Returns 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let edge = BUCKET_EDGES_US.get(i).copied().unwrap_or(u64::MAX);
                return edge.clamp(self.min_us(), self.max_us());
            }
        }
        self.max_us()
    }

    /// Median (nearest-rank p50), µs.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// Nearest-rank p99, µs.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// Raw bucket counts (edges first, overflow last).
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Adds every sample of `other` into `self` (bucket-wise; min/max
    /// and the exact sum merge too). The per-worker → global path.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let count = other.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)] // tests may unwrap freely

    use super::*;

    #[test]
    fn bucket_edges_are_strictly_increasing_one_two_five() {
        for pair in BUCKET_EDGES_US.windows(2) {
            assert!(pair[0] < pair[1]);
            let ratio = pair[1] as f64 / pair[0] as f64;
            assert!((2.0..=2.5).contains(&ratio), "ratio {ratio}");
        }
        assert_eq!(BUCKET_EDGES_US[0], 1);
        assert_eq!(*BUCKET_EDGES_US.last().unwrap(), 100_000_000);
    }

    #[test]
    fn samples_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.record_us(1); // bucket 0 (≤ 1)
        h.record_us(2); // bucket 1 (≤ 2)
        h.record_us(3); // bucket 2 (≤ 5)
        h.record_us(5); // bucket 2
        h.record_us(6); // bucket 3 (≤ 10)
        h.record_us(200_000_001); // overflow
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[3], 1);
        assert_eq!(counts[BUCKET_COUNT - 1], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn nearest_rank_matches_the_textbook_rule() {
        // N = 5: p50 → rank ⌈2.5⌉ = 3; p99 → rank ⌈4.95⌉ = 5.
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(nearest_rank(&sorted, 0.50), 30.0);
        assert_eq!(nearest_rank(&sorted, 0.99), 50.0);
        assert_eq!(nearest_rank(&sorted, 0.0), 10.0); // clamps to rank 1
        assert_eq!(nearest_rank(&sorted, 1.0), 50.0);
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn nan_samples_are_rejected_or_filtered() {
        // A raw wall-clock delta can come in NaN; it must never poison
        // the reported percentile. Debug builds trip the assertion;
        // release builds rank the remaining (still sorted) values.
        let with_nan = [1.0, 2.0, 3.0, f64::NAN];
        if cfg!(debug_assertions) {
            let caught = std::panic::catch_unwind(|| nearest_rank(&with_nan, 0.99));
            assert!(caught.is_err(), "debug build must reject NaN samples");
        } else {
            assert_eq!(nearest_rank(&with_nan, 0.99), 3.0);
            assert_eq!(nearest_rank(&with_nan, 0.50), 2.0);
            assert_eq!(nearest_rank(&[f64::NAN, f64::NAN], 0.99), 0.0);
        }
    }

    #[test]
    fn histogram_percentiles_use_the_same_rank_rule() {
        // Samples sit exactly on bucket edges so the bucket upper edge
        // IS the sample value — the histogram must then agree exactly
        // with the raw nearest-rank rule.
        let samples = [10u64, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000];
        let h = Histogram::new();
        for &s in &samples {
            h.record_us(s);
        }
        let sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        for q in [0.10, 0.25, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(
                h.percentile_us(q),
                nearest_rank(&sorted, q) as u64,
                "q = {q}"
            );
        }
    }

    #[test]
    fn degenerate_distributions_report_exact_values() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_us(7); // inside the (5, 10] bucket
        }
        // The bucket edge is 10 but min == max == 7 clamps it back.
        assert_eq!(h.p50_us(), 7);
        assert_eq!(h.p99_us(), 7);
        assert_eq!(h.min_us(), 7);
        assert_eq!(h.max_us(), 7);
        assert_eq!(h.mean_us(), 7.0);
    }

    #[test]
    fn exact_max_is_not_quantised_to_a_bucket_edge() {
        // A long-tail apply latency must come back as observed, not
        // rounded up to the 1-2-5 edge of its bucket: the tables in
        // `reproduce churn` / failures report this max verbatim.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record_us(80); // inside the (50, 100] bucket
        }
        h.record_us(987_654); // inside the (500_000, 1_000_000] bucket
        assert_eq!(h.max_us(), 987_654);
        // N = 11: the p99 rank (11) lands in the tail bucket, whose
        // edge is 1_000_000 — the exact max clamps the report back to
        // the observed value.
        assert_eq!(h.p99_us(), 987_654);
    }

    #[test]
    fn overflow_bucket_reports_the_recorded_max() {
        let h = Histogram::new();
        h.record_us(1);
        h.record_us(300_000_000);
        assert_eq!(h.p99_us(), 300_000_000);
    }

    #[test]
    fn merge_preserves_counts_sum_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_us(10);
        a.record_us(100);
        b.record_us(1);
        b.record_us(1_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum_us(), 1111);
        assert_eq!(a.min_us(), 1);
        assert_eq!(a.max_us(), 1_000);
        // Merging an empty histogram is a no-op (min stays intact).
        a.merge_from(&Histogram::new());
        assert_eq!(a.count(), 4);
        assert_eq!(a.min_us(), 1);
    }

    #[test]
    fn record_seconds_rounds_to_microseconds() {
        let h = Histogram::new();
        h.record_seconds(0.0031);
        assert_eq!(h.sum_us(), 3100);
        h.record_seconds(-1.0); // clamped, never panics
        assert_eq!(h.min_us(), 0);
    }
}
