//! RAII scoped timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and
//! its drop. On drop (mode permitting) the duration lands in the
//! span-kind's histogram in the global registry, and in `Full` mode a
//! chrome-trace complete event is buffered on the recording thread —
//! per-worker aggregation with a single merge when the thread exits
//! (the λ-sharded pool joins its scoped workers) or on an explicit
//! [`flush_thread_trace`].
//!
//! Three constructors with different mode behaviour:
//!
//! * [`span`] — inert (no clock read at all) when the mode is `Off`.
//! * [`span_labeled`] — like [`span`], with a static label that
//!   becomes the trace-event name (e.g. a heuristic acronym).
//! * [`timed_span`] — **always** reads the clock; callers that need
//!   the duration regardless of mode (e.g. experiment `TrialResult`
//!   timings) consume it with [`Span::finish_seconds`]. Publication
//!   into the registry is still mode-gated.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::{global, HistId};
use crate::trace::{push_trace_events, TraceEvent};
use crate::{counters_on, full_on};

/// What a span measures — each kind maps to one histogram and one
/// trace category.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// One revised-simplex solve (`rp-lp`).
    LpSolve,
    /// One classic-heuristic run (`rp-core`).
    HeuristicRun,
    /// One LP-guided rounding portfolio (`rp-core`).
    LpGuidedRound,
    /// One `repair_after_failure` call (`rp-core`).
    FailureRepair,
    /// One per-λ figure trial (`rp-experiments`).
    Trial,
    /// One LP bound solve inside a scenario trial (`rp-experiments`).
    LpBound,
    /// The heuristics phase of a trial (`rp-experiments`).
    HeuristicsPhase,
    /// One resilience (failure-injection) trial (`rp-experiments`).
    ResilienceTrial,
    /// One delta apply in the online placement engine (`rp-online`).
    OnlineApply,
}

impl SpanKind {
    /// The default trace-event name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::LpSolve => "lp.solve",
            SpanKind::HeuristicRun => "core.heuristic",
            SpanKind::LpGuidedRound => "core.lpg.round",
            SpanKind::FailureRepair => "core.repair",
            SpanKind::Trial => "exp.trial",
            SpanKind::LpBound => "exp.lp_bound",
            SpanKind::HeuristicsPhase => "exp.heuristics",
            SpanKind::ResilienceTrial => "exp.resilience_trial",
            SpanKind::OnlineApply => "online.apply",
        }
    }

    /// The trace category (= owning workspace layer).
    pub fn cat(self) -> &'static str {
        match self {
            SpanKind::LpSolve => "rp-lp",
            SpanKind::HeuristicRun | SpanKind::LpGuidedRound | SpanKind::FailureRepair => "rp-core",
            SpanKind::Trial
            | SpanKind::LpBound
            | SpanKind::HeuristicsPhase
            | SpanKind::ResilienceTrial => "rp-experiments",
            SpanKind::OnlineApply => "rp-online",
        }
    }

    /// The registry histogram this kind records into.
    pub fn hist(self) -> HistId {
        match self {
            SpanKind::LpSolve => HistId::LpSolveUs,
            SpanKind::HeuristicRun => HistId::CoreHeuristicUs,
            SpanKind::LpGuidedRound => HistId::CoreLpgRoundUs,
            SpanKind::FailureRepair => HistId::CoreRepairUs,
            SpanKind::Trial => HistId::ExpTrialUs,
            SpanKind::LpBound => HistId::ExpLpBoundUs,
            SpanKind::HeuristicsPhase => HistId::ExpHeuristicsUs,
            SpanKind::ResilienceTrial => HistId::ExpResilienceTrialUs,
            SpanKind::OnlineApply => HistId::OnlineApplyUs,
        }
    }
}

/// The single process-wide time origin for trace timestamps. Anchored
/// on first use (mode enable or first span).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Anchors the epoch now (called from `set_mode` so traces start at
/// t≈0 of the observed region).
pub(crate) fn anchor_epoch() {
    let _ = epoch();
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

struct LocalObs {
    tid: u32,
    stack: Vec<SpanKind>,
    events: Vec<TraceEvent>,
}

impl LocalObs {
    fn new() -> Self {
        Self {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl Drop for LocalObs {
    fn drop(&mut self) {
        push_trace_events(&mut self.events);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalObs> = RefCell::new(LocalObs::new());
}

/// Pushes this thread's buffered trace events to the global buffer.
/// Worker threads do this automatically on exit; the main thread calls
/// it (via the exporters) before rendering a trace.
pub fn flush_thread_trace() {
    let _ = LOCAL.try_with(|local| {
        push_trace_events(&mut local.borrow_mut().events);
    });
}

/// Depth of the calling thread's open-span stack (0 outside any span).
/// Maintained only while spans are recording.
pub fn current_span_depth() -> usize {
    LOCAL.with(|local| local.borrow().stack.len())
}

/// A scoped timer; see the module docs for the three constructors.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct Span {
    kind: SpanKind,
    label: Option<&'static str>,
    start: Option<Instant>,
    publish: bool,
    pushed: bool,
    closed: bool,
}

impl Span {
    fn new(kind: SpanKind, label: Option<&'static str>, timed: bool) -> Self {
        let publish = counters_on();
        let start = if publish || timed {
            Some(Instant::now())
        } else {
            None
        };
        let pushed = publish && full_on();
        if pushed {
            anchor_epoch();
            LOCAL.with(|local| local.borrow_mut().stack.push(kind));
        }
        Self {
            kind,
            label,
            start,
            publish,
            pushed,
            closed: false,
        }
    }

    /// Closes the span once: pops the stack, publishes the duration.
    fn close(&mut self) -> f64 {
        if self.closed {
            return 0.0;
        }
        self.closed = true;
        let Some(start) = self.start else {
            return 0.0;
        };
        let elapsed = start.elapsed();
        if self.pushed {
            LOCAL.with(|local| {
                let mut local = local.borrow_mut();
                local.stack.pop();
                let ts_us = start.duration_since(epoch()).as_micros() as u64;
                let tid = local.tid;
                local.events.push(TraceEvent {
                    name: self.label.unwrap_or(self.kind.name()),
                    cat: self.kind.cat(),
                    ts_us,
                    dur_us: elapsed.as_micros() as u64,
                    tid,
                });
            });
        }
        if self.publish {
            global().record_us(self.kind.hist(), elapsed.as_micros() as u64);
        }
        elapsed.as_secs_f64()
    }

    /// Ends the span now and returns the measured duration in seconds
    /// (0.0 for an inert span — use [`timed_span`] when the duration
    /// is needed in every mode).
    pub fn finish_seconds(mut self) -> f64 {
        self.close()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// A mode-gated span: when observability is `Off` this never reads the
/// clock — creation and drop are one relaxed load each.
pub fn span(kind: SpanKind) -> Span {
    Span::new(kind, None, false)
}

/// [`span`] with a static label used as the trace-event name.
pub fn span_labeled(kind: SpanKind, label: &'static str) -> Span {
    Span::new(kind, Some(label), false)
}

/// A span that **always** times (for callers that consume the duration
/// via [`Span::finish_seconds`]); registry/trace publication stays
/// mode-gated.
pub fn timed_span(kind: SpanKind) -> Span {
    Span::new(kind, None, true)
}

/// [`timed_span`] with a static label.
pub fn timed_span_labeled(kind: SpanKind, label: &'static str) -> Span {
    Span::new(kind, Some(label), true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_spans_never_touch_the_clock_or_stack() {
        // Mode is Off by default in unit tests of this crate.
        if crate::mode() != crate::ObsMode::Off {
            return; // another test flipped the global mode; skip
        }
        let span = span(SpanKind::LpSolve);
        assert!(span.start.is_none());
        assert_eq!(span.finish_seconds(), 0.0);
    }

    #[test]
    fn timed_spans_measure_even_when_off() {
        let span = timed_span(SpanKind::Trial);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let seconds = span.finish_seconds();
        assert!(seconds >= 0.002, "measured {seconds}");
    }

    #[test]
    fn span_depth_is_zero_outside_spans() {
        assert_eq!(current_span_depth(), 0);
    }
}
