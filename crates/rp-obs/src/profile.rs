//! Per-solve phase profiler: wall-time attribution across a fixed
//! enum of solver phases.
//!
//! Instrumentation sites open a [`PhaseTimer`] (via [`phase_timer`])
//! around one phase of work; the elapsed nanoseconds accumulate in
//! thread-local slots that the solver drains into its `SolveStats` at
//! solve end ([`take_solve_profile`]). Timed regions are disjoint by
//! construction in `rp-lp` — a phase timer never runs inside another
//! phase timer — so the per-phase times sum to (slightly under) the
//! solve wall time, and the remainder is genuinely unattributed glue.
//!
//! The gating contract matches the rest of the crate: under
//! [`ObsMode::Off`](crate::ObsMode::Off) a site costs one relaxed
//! load and a branch — no clock is read, the thread-local is never
//! touched, and solver decisions never depend on any timing.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Counter;

/// Number of solver phases in [`Phase::ALL`].
pub const PHASE_COUNT: usize = 9;

/// One phase of a revised-simplex solve. The set is fixed and small
/// so per-phase accumulators are plain arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Entering/leaving candidate selection and reduced-cost / devex
    /// weight maintenance.
    Pricing,
    /// Forward transforms `B^-1 a` (dense and hyper-sparse) plus the
    /// primal step application.
    Ftran,
    /// Backward transforms `y^T B^-1 = e_r^T` and the pivot-row
    /// assembly built on them.
    Btran,
    /// Primal and dual ratio tests (incl. bound-flipping passes).
    RatioTest,
    /// Sparse LU refactorisation and the post-refactor recompute.
    Factorise,
    /// Forrest–Tomlin basis updates.
    FtUpdate,
    /// Presolve analysis and reduced-model build.
    Presolve,
    /// Geometric-mean equilibration of the working form.
    Scaling,
    /// Solution extraction, postsolve and dual-bound assembly.
    Extract,
}

impl Phase {
    /// Every phase, in declaration (= export) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Pricing,
        Phase::Ftran,
        Phase::Btran,
        Phase::RatioTest,
        Phase::Factorise,
        Phase::FtUpdate,
        Phase::Presolve,
        Phase::Scaling,
        Phase::Extract,
    ];

    /// The wire name used in dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pricing => "pricing",
            Phase::Ftran => "ftran",
            Phase::Btran => "btran",
            Phase::RatioTest => "ratio_test",
            Phase::Factorise => "factorise",
            Phase::FtUpdate => "ft_update",
            Phase::Presolve => "presolve",
            Phase::Scaling => "scaling",
            Phase::Extract => "extract",
        }
    }

    /// The global counter accumulating this phase's nanoseconds
    /// across solves.
    pub fn counter(self) -> Counter {
        match self {
            Phase::Pricing => Counter::LpPhasePricingNs,
            Phase::Ftran => Counter::LpPhaseFtranNs,
            Phase::Btran => Counter::LpPhaseBtranNs,
            Phase::RatioTest => Counter::LpPhaseRatioTestNs,
            Phase::Factorise => Counter::LpPhaseFactoriseNs,
            Phase::FtUpdate => Counter::LpPhaseFtUpdateNs,
            Phase::Presolve => Counter::LpPhasePresolveNs,
            Phase::Scaling => Counter::LpPhaseScalingNs,
            Phase::Extract => Counter::LpPhaseExtractNs,
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated per-phase wall time and call counts for one solve.
///
/// Small, `Copy`, all-zero by default — it travels inside
/// `SolveStats` without changing that struct's ergonomics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
}

impl PhaseTimes {
    /// Nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of timed entries into `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()]
    }

    /// Total attributed nanoseconds across every phase.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `true` when nothing was recorded (e.g. an `Off`-mode solve).
    pub fn is_zero(&self) -> bool {
        *self == PhaseTimes::default()
    }

    /// Records one timed entry of `nanos` ns into `phase`.
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] = self.nanos[phase.index()].saturating_add(nanos);
        self.calls[phase.index()] = self.calls[phase.index()].saturating_add(1);
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..PHASE_COUNT {
            self.nanos[i] = self.nanos[i].saturating_add(other.nanos[i]);
            self.calls[i] = self.calls[i].saturating_add(other.calls[i]);
        }
    }
}

thread_local! {
    static SLOTS: RefCell<PhaseTimes> = RefCell::new(PhaseTimes::default());
}

/// Zeroes the calling thread's phase slots. The solver calls this on
/// solve entry (mode-gated by the caller) so a breakdown never leaks
/// across solves.
pub fn reset_solve_profile() {
    SLOTS.with(|slots| *slots.borrow_mut() = PhaseTimes::default());
}

/// Drains the calling thread's phase slots: returns what accumulated
/// since the last reset and zeroes them.
pub fn take_solve_profile() -> PhaseTimes {
    SLOTS.with(|slots| std::mem::take(&mut *slots.borrow_mut()))
}

/// RAII phase timer returned by [`phase_timer`]. Records the elapsed
/// wall time into the thread-local slots on drop; inert (no clock
/// read) when the mode was `Off` at construction.
#[must_use = "a phase timer measures the scope it is bound to"]
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

/// Opens a timer attributing the enclosing scope to `phase`. One
/// relaxed load when observation is off.
#[inline]
pub fn phase_timer(phase: Phase) -> PhaseTimer {
    PhaseTimer {
        phase,
        start: crate::counters_on().then(Instant::now),
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            SLOTS.with(|slots| slots.borrow_mut().record(self.phase, nanos));
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn phase_names_and_counters_are_distinct() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
        let mut counters: Vec<&str> = Phase::ALL.iter().map(|p| p.counter().name()).collect();
        counters.sort_unstable();
        counters.dedup();
        assert_eq!(counters.len(), PHASE_COUNT);
        for phase in Phase::ALL {
            assert!(
                phase.counter().name().contains(phase.name()),
                "{} vs {}",
                phase.counter().name(),
                phase.name()
            );
        }
    }

    #[test]
    fn phase_times_record_merge_and_total() {
        let mut a = PhaseTimes::default();
        assert!(a.is_zero());
        a.record(Phase::Ftran, 100);
        a.record(Phase::Ftran, 50);
        a.record(Phase::Pricing, 7);
        assert_eq!(a.nanos(Phase::Ftran), 150);
        assert_eq!(a.calls(Phase::Ftran), 2);
        assert_eq!(a.total_nanos(), 157);
        let mut b = PhaseTimes::default();
        b.record(Phase::Ftran, 1);
        b.merge(&a);
        assert_eq!(b.nanos(Phase::Ftran), 151);
        assert_eq!(b.calls(Phase::Ftran), 3);
        assert!(!b.is_zero());
    }

    #[test]
    fn take_drains_the_thread_local_slots() {
        reset_solve_profile();
        SLOTS.with(|slots| slots.borrow_mut().record(Phase::Scaling, 42));
        let taken = take_solve_profile();
        assert_eq!(taken.nanos(Phase::Scaling), 42);
        assert!(take_solve_profile().is_zero());
    }

    #[test]
    fn timer_is_inert_while_mode_is_off() {
        // The unit-test binary leaves the global mode Off; an inert
        // timer must not touch the slots.
        reset_solve_profile();
        {
            let _t = phase_timer(Phase::Btran);
        }
        assert!(take_solve_profile().is_zero());
    }
}
