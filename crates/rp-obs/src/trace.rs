//! chrome://tracing export: completed spans become `"ph":"X"` complete
//! events in the `traceEvents` JSON format that chrome://tracing,
//! Perfetto and speedscope all load directly.
//!
//! Worker threads buffer events locally (see [`crate::span`]) and push
//! them here in batches — either when the thread exits (the λ-sharded
//! pool's scoped workers) or on an explicit flush before export.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::push_json_string;

/// One completed span, ready for the chrome trace.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (the span kind, or its label).
    pub name: &'static str,
    /// Category — the workspace layer that produced the span.
    pub cat: &'static str,
    /// Start timestamp, µs since the process obs epoch.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Observability thread id (small dense ints, not OS tids).
    pub tid: u32,
}

/// Hard cap on buffered events — beyond it new events are counted as
/// dropped rather than growing without bound.
const TRACE_CAP: usize = 1 << 20;

static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static TRACE_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Locks the buffer, recovering it if a panicking thread poisoned the
/// mutex — telemetry must keep working after a panic elsewhere (the
/// worst case is one partially appended batch).
fn lock_trace() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    TRACE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Appends `events` to `buffer`, evicting the *oldest* events first
/// when the combined size exceeds `cap`. Returns how many events were
/// evicted. Oldest-first keeps the most recent activity in the trace
/// — a truncated export shows the end of the run, not the start.
fn append_with_cap(buffer: &mut Vec<TraceEvent>, events: &mut Vec<TraceEvent>, cap: usize) -> u64 {
    let total = buffer.len() + events.len();
    if total <= cap {
        buffer.append(events);
        return 0;
    }
    let evict = total - cap;
    let from_buffer = evict.min(buffer.len());
    buffer.drain(..from_buffer);
    // Only when the incoming batch alone exceeds the cap does the
    // batch's own head go too.
    events.drain(..evict - from_buffer);
    buffer.append(events);
    evict as u64
}

/// Appends a batch of thread-local events to the global buffer
/// (oldest-first eviction at the cap; drops are counted so a
/// truncated export is detectable).
pub(crate) fn push_trace_events(events: &mut Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    let dropped = {
        let mut buffer = lock_trace();
        append_with_cap(&mut buffer, events, TRACE_CAP)
    };
    if dropped > 0 {
        TRACE_DROPPED.fetch_add(dropped, Ordering::Relaxed);
        if crate::counters_on() {
            crate::global().add(crate::Counter::TraceEventsDropped, dropped);
        }
    }
}

/// Number of events currently buffered.
pub fn trace_event_count() -> usize {
    lock_trace().len()
}

/// Number of events dropped at the cap since the last clear.
pub fn trace_dropped_count() -> u64 {
    TRACE_DROPPED.load(Ordering::Relaxed)
}

/// Clears the buffer (and the dropped counter).
pub fn clear_trace() {
    lock_trace().clear();
    TRACE_DROPPED.store(0, Ordering::Relaxed);
}

/// Renders the buffered events as a chrome://tracing JSON document.
/// Flushes the calling thread's local buffer first; worker threads
/// flush on exit, so call this after joins.
pub fn chrome_trace_json() -> String {
    crate::span::flush_thread_trace();
    let buffer = lock_trace();
    let mut out = String::with_capacity(64 + buffer.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"replica-placement\"}}",
    );
    for event in buffer.iter() {
        out.push_str(&format!(
            ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":",
            event.tid, event.ts_us, event.dur_us
        ));
        push_json_string(&mut out, event.name);
        out.push_str(",\"cat\":");
        push_json_string(&mut out, event.cat);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_renders_complete_events() {
        // Serialise against other tests touching the global buffer.
        let mut events = vec![TraceEvent {
            name: "lp.solve",
            cat: "rp-lp",
            ts_us: 10,
            dur_us: 25,
            tid: 3,
        }];
        push_trace_events(&mut events);
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"lp.solve\""));
        assert!(json.contains("\"cat\":\"rp-lp\""));
        assert!(json.contains("\"dur\":25"));
        clear_trace();
    }

    #[test]
    fn the_cap_counts_drops_instead_of_growing() {
        // Does not actually fill 2^20 events; just checks the
        // bookkeeping with a synthetic over-cap push.
        let mut events: Vec<TraceEvent> = Vec::new();
        push_trace_events(&mut events); // empty push is a no-op
        assert_eq!(trace_dropped_count(), 0);
    }

    fn event_at(ts_us: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: "t",
            ts_us,
            dur_us: 1,
            tid: 0,
        }
    }

    #[test]
    fn eviction_drops_the_oldest_events_first() {
        let mut buffer: Vec<TraceEvent> = (0..4).map(event_at).collect();
        let mut batch: Vec<TraceEvent> = (4..7).map(event_at).collect();
        let dropped = append_with_cap(&mut buffer, &mut batch, 5);
        assert_eq!(dropped, 2);
        let kept: Vec<u64> = buffer.iter().map(|e| e.ts_us).collect();
        // The two oldest buffered events went; the new batch survived.
        assert_eq!(kept, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn a_batch_larger_than_the_cap_keeps_its_newest_tail() {
        let mut buffer: Vec<TraceEvent> = (0..2).map(event_at).collect();
        let mut batch: Vec<TraceEvent> = (10..20).map(event_at).collect();
        let dropped = append_with_cap(&mut buffer, &mut batch, 3);
        assert_eq!(dropped, 9);
        let kept: Vec<u64> = buffer.iter().map(|e| e.ts_us).collect();
        assert_eq!(kept, vec![17, 18, 19]);
    }

    #[test]
    fn under_cap_appends_drop_nothing() {
        let mut buffer: Vec<TraceEvent> = (0..2).map(event_at).collect();
        let mut batch: Vec<TraceEvent> = (2..4).map(event_at).collect();
        assert_eq!(append_with_cap(&mut buffer, &mut batch, 10), 0);
        assert_eq!(buffer.len(), 4);
    }
}
