//! The metric registry: enum-indexed atomic counters, gauges and
//! latency histograms, plus the machine-readable metrics JSON export.
//!
//! Every metric is declared once in the tables below — name, unit and
//! owning layer travel with the enum variant, so the JSON export, the
//! crate-docs catalogue and the perf-budget gate all read one source
//! of truth. Counting is a single relaxed `fetch_add`; reading is
//! lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::histogram::Histogram;
use crate::json::{push_json_f64, push_json_string};

macro_rules! metric_enum {
    (
        $(#[$meta:meta])*
        $enum_name:ident : $( $variant:ident => ($name:literal, $unit:literal, $layer:literal) ),+ $(,)?
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        pub enum $enum_name {
            $( #[doc = concat!("`", $name, "` — ", $unit, " (", $layer, ")")] $variant ),+
        }

        impl $enum_name {
            /// Every variant, in declaration (= export) order.
            pub const ALL: [$enum_name; [$($name),+].len()] = [ $( $enum_name::$variant ),+ ];
            /// Number of variants.
            pub const COUNT: usize = Self::ALL.len();

            /// The wire name of the metric.
            pub fn name(self) -> &'static str {
                match self { $( $enum_name::$variant => $name ),+ }
            }
            /// The unit (`"1"` for dimensionless counts).
            pub fn unit(self) -> &'static str {
                match self { $( $enum_name::$variant => $unit ),+ }
            }
            /// The workspace layer that records the metric.
            pub fn layer(self) -> &'static str {
                match self { $( $enum_name::$variant => $layer ),+ }
            }
            #[inline]
            pub(crate) fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotonic counters (`u64`, relaxed atomics).
    Counter :
    // --- rp-lp: per-solve simplex statistics, summed over solves. ---
    LpSolves => ("lp.solves", "1", "rp-lp"),
    LpPhase1Pivots => ("lp.phase1_pivots", "1", "rp-lp"),
    LpPhase2Pivots => ("lp.phase2_pivots", "1", "rp-lp"),
    LpDualPivots => ("lp.dual_pivots", "1", "rp-lp"),
    LpBoundFlips => ("lp.bound_flips", "1", "rp-lp"),
    LpDegeneratePivots => ("lp.degenerate_pivots", "1", "rp-lp"),
    LpRefactorisations => ("lp.refactor.count", "1", "rp-lp"),
    LpRefactorScheduled => ("lp.refactor.scheduled", "1", "rp-lp"),
    LpRefactorFtRefused => ("lp.refactor.ft_refused", "1", "rp-lp"),
    LpWarmCold => ("lp.warm.cold", "1", "rp-lp"),
    LpWarmHit => ("lp.warm.hit", "1", "rp-lp"),
    LpWarmRefactor => ("lp.warm.refactor", "1", "rp-lp"),
    LpWarmModeChangeCold => ("lp.warm.mode_change_cold", "1", "rp-lp"),
    LpPresolveRowsRemoved => ("lp.presolve.rows_removed", "1", "rp-lp"),
    LpPresolveColsRemoved => ("lp.presolve.cols_removed", "1", "rp-lp"),
    LpPricingPartial => ("lp.pricing.partial", "1", "rp-lp"),
    LpPricingDevex => ("lp.pricing.devex", "1", "rp-lp"),
    LpPricingDantzig => ("lp.pricing.dantzig", "1", "rp-lp"),
    LpPricingBland => ("lp.pricing.bland", "1", "rp-lp"),
    LpQueueHits => ("lp.queue.hits", "1", "rp-lp"),
    LpQueueRebuilds => ("lp.queue.rebuilds", "1", "rp-lp"),
    LpDualBoundFlips => ("lp.dual.bound_flips", "1", "rp-lp"),
    LpDevexResets => ("lp.devex.resets", "1", "rp-lp"),
    LpFtranCalls => ("lp.ftran.calls", "1", "rp-lp"),
    LpFtranInNnz => ("lp.ftran.in_nnz", "1", "rp-lp"),
    LpFtranDim => ("lp.ftran.dim", "1", "rp-lp"),
    LpBtranCalls => ("lp.btran.calls", "1", "rp-lp"),
    LpBtranInNnz => ("lp.btran.in_nnz", "1", "rp-lp"),
    LpBtranDim => ("lp.btran.dim", "1", "rp-lp"),
    LpHardenedCheckedRevised => ("lp.hardened.checked_revised", "1", "rp-lp"),
    LpHardenedRefactorRetry => ("lp.hardened.refactor_retry", "1", "rp-lp"),
    LpHardenedDenseFallback => ("lp.hardened.dense_fallback", "1", "rp-lp"),
    LpHardenedError => ("lp.hardened.error", "1", "rp-lp"),
    LpPhasePricingNs => ("lp.phase.pricing_ns", "ns", "rp-lp"),
    LpPhaseFtranNs => ("lp.phase.ftran_ns", "ns", "rp-lp"),
    LpPhaseBtranNs => ("lp.phase.btran_ns", "ns", "rp-lp"),
    LpPhaseRatioTestNs => ("lp.phase.ratio_test_ns", "ns", "rp-lp"),
    LpPhaseFactoriseNs => ("lp.phase.factorise_ns", "ns", "rp-lp"),
    LpPhaseFtUpdateNs => ("lp.phase.ft_update_ns", "ns", "rp-lp"),
    LpPhasePresolveNs => ("lp.phase.presolve_ns", "ns", "rp-lp"),
    LpPhaseScalingNs => ("lp.phase.scaling_ns", "ns", "rp-lp"),
    LpPhaseExtractNs => ("lp.phase.extract_ns", "ns", "rp-lp"),
    // --- rp-core: heuristics, LP-guided rounding, failure repair. ---
    CoreHeuristicRuns => ("core.heuristic.runs", "1", "rp-core"),
    CoreHeuristicFailures => ("core.heuristic.failures", "1", "rp-core"),
    CoreLpgRounds => ("core.lpg.rounds", "1", "rp-core"),
    CoreLpgWinCommitSaturate => ("core.lpg.win.commit_saturate", "1", "rp-core"),
    CoreLpgWinThinGuided => ("core.lpg.win.thin_guided", "1", "rp-core"),
    CoreLpgInfeasible => ("core.lpg.infeasible", "1", "rp-core"),
    CoreLpgMovesRehome => ("core.lpg.moves.rehome", "1", "rp-core"),
    CoreLpgMovesEscalateOpen => ("core.lpg.moves.escalate_open", "1", "rp-core"),
    CoreLpgMovesRescue => ("core.lpg.moves.rescue", "1", "rp-core"),
    CoreLpgMovesPushDown => ("core.lpg.moves.push_down", "1", "rp-core"),
    CoreLpgMovesPruneDrop => ("core.lpg.moves.prune_drop", "1", "rp-core"),
    CoreLpgMovesConsolidate => ("core.lpg.moves.consolidate", "1", "rp-core"),
    CoreRepairSurgical => ("core.repair.rung.surgical", "1", "rp-core"),
    CoreRepairHeuristicRerun => ("core.repair.rung.heuristic_rerun", "1", "rp-core"),
    CoreRepairDegraded => ("core.repair.rung.degraded", "1", "rp-core"),
    CoreRepairRehomedClients => ("core.repair.rehomed_clients", "1", "rp-core"),
    CoreRepairDroppedClients => ("core.repair.dropped_clients", "1", "rp-core"),
    // --- rp-online: the incremental placement engine. ---
    OnlineApplies => ("online.applies", "1", "rp-online"),
    OnlineRungSurgical => ("online.rung.surgical", "1", "rp-online"),
    OnlineRungLpRepair => ("online.rung.lp_repair", "1", "rp-online"),
    OnlineRungRerun => ("online.rung.rerun", "1", "rp-online"),
    OnlineRungDegraded => ("online.rung.degraded", "1", "rp-online"),
    OnlineRollbacks => ("online.rollbacks", "1", "rp-online"),
    OnlineDeferred => ("online.deferred", "1", "rp-online"),
    // --- rp-experiments: sweep drivers. ---
    ExpTrials => ("exp.trials", "1", "rp-experiments"),
    ExpScenarioTrials => ("exp.scenario_trials", "1", "rp-experiments"),
    ExpResilienceTrials => ("exp.resilience_trials", "1", "rp-experiments"),
    ExpChurnTrials => ("exp.churn_trials", "1", "rp-experiments"),
    // --- rp-obs: the telemetry layer watching itself. ---
    TraceEventsDropped => ("trace.events_dropped", "1", "rp-obs"),
    RecRecords => ("rec.records", "1", "rp-obs"),
    RecAnomalies => ("rec.anomalies", "1", "rp-obs"),
    RecDumps => ("rec.dumps", "1", "rp-obs"),
    RecAnomalySlow => ("rec.anomaly.slow", "1", "rp-obs"),
    RecAnomalyBudgetMiss => ("rec.anomaly.budget_miss", "1", "rp-obs"),
    RecAnomalyDenseOracle => ("rec.anomaly.dense_oracle", "1", "rp-obs"),
    RecAnomalyRollback => ("rec.anomaly.rollback", "1", "rp-obs"),
}

metric_enum! {
    /// Last-value / high-watermark gauges (`u64`).
    Gauge :
    LpFactorNnzL => ("lp.factor.nnz_l", "nnz", "rp-lp"),
    LpFactorNnzU => ("lp.factor.nnz_u", "nnz", "rp-lp"),
    LpEtaChainMax => ("lp.eta_chain.max", "updates", "rp-lp"),
    LpLastIterations => ("lp.last.iterations", "1", "rp-lp"),
    OnlineGeneration => ("online.generation", "1", "rp-online"),
}

metric_enum! {
    /// Float gauges (`f64` stored as bits; last value wins).
    GaugeF :
    LpScalingSpreadBefore => ("lp.scaling.spread_before", "ratio", "rp-lp"),
    LpScalingSpreadAfter => ("lp.scaling.spread_after", "ratio", "rp-lp"),
}

metric_enum! {
    /// Latency histograms (microsecond samples, 1–2–5 buckets).
    HistId :
    LpSolveUs => ("lp.solve_us", "us", "rp-lp"),
    CoreHeuristicUs => ("core.heuristic_us", "us", "rp-core"),
    CoreLpgRoundUs => ("core.lpg.round_us", "us", "rp-core"),
    CoreRepairUs => ("core.repair_us", "us", "rp-core"),
    ExpTrialUs => ("exp.trial_us", "us", "rp-experiments"),
    ExpLpBoundUs => ("exp.lp_bound_us", "us", "rp-experiments"),
    ExpHeuristicsUs => ("exp.heuristics_us", "us", "rp-experiments"),
    ExpResilienceTrialUs => ("exp.resilience_trial_us", "us", "rp-experiments"),
    OnlineApplyUs => ("online.apply_us", "us", "rp-online"),
}

/// A registry of every declared counter, gauge and histogram.
///
/// Instantiable (unit tests and per-worker scratch use private
/// registries); the process-wide instance lives behind [`global`].
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Box<[AtomicU64]>,
    gauges: Box<[AtomicU64]>,
    gauges_f: Box<[AtomicU64]>,
    hists: Box<[Histogram]>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An all-zero registry.
    pub fn new() -> Self {
        Self {
            counters: (0..Counter::COUNT).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..Gauge::COUNT).map(|_| AtomicU64::new(0)).collect(),
            gauges_f: (0..GaugeF::COUNT)
                .map(|_| AtomicU64::new(0f64.to_bits()))
                .collect(),
            hists: (0..HistId::COUNT).map(|_| Histogram::new()).collect(),
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Sets a gauge to `value` (last write wins).
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
    }

    /// Raises a gauge to `value` if larger (high-watermark).
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Sets a float gauge (last write wins).
    #[inline]
    pub fn gauge_f_set(&self, gauge: GaugeF, value: f64) {
        self.gauges_f[gauge.index()].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current float gauge value.
    pub fn gauge_f(&self, gauge: GaugeF) -> f64 {
        f64::from_bits(self.gauges_f[gauge.index()].load(Ordering::Relaxed))
    }

    /// The histogram behind `id`.
    pub fn histogram(&self, id: HistId) -> &Histogram {
        &self.hists[id.index()]
    }

    /// Records one microsecond sample into histogram `id`.
    #[inline]
    pub fn record_us(&self, id: HistId, value_us: u64) {
        self.hists[id.index()].record_us(value_us);
    }

    /// Adds every count and sample of `other` into `self` (counters
    /// add; gauges take the max / last value; histograms merge
    /// bucket-wise).
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (mine, theirs) in self.counters.iter().zip(other.counters.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        for (mine, theirs) in self.gauges.iter().zip(other.gauges.iter()) {
            mine.fetch_max(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (mine, theirs) in self.gauges_f.iter().zip(other.gauges_f.iter()) {
            let bits = theirs.load(Ordering::Relaxed);
            if f64::from_bits(bits) != 0.0 {
                mine.store(bits, Ordering::Relaxed);
            }
        }
        for (mine, theirs) in self.hists.iter().zip(other.hists.iter()) {
            mine.merge_from(theirs);
        }
    }

    /// Zeroes every metric.
    pub fn reset(&self) {
        for counter in self.counters.iter() {
            counter.store(0, Ordering::Relaxed);
        }
        for gauge in self.gauges.iter() {
            gauge.store(0, Ordering::Relaxed);
        }
        for gauge in self.gauges_f.iter() {
            gauge.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for hist in self.hists.iter() {
            hist.reset();
        }
    }

    /// Renders the whole registry as a metrics JSON document:
    /// `{"schema":1,"mode":...,"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum_us,min_us,max_us,mean_us,p50_us,
    /// p99_us}},"derived":{...}}`.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":1,\"mode\":");
        push_json_string(&mut out, crate::mode().as_str());
        out.push_str(",\"counters\":{");
        for (i, &counter) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, counter.name());
            out.push(':');
            out.push_str(&self.counter(counter).to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, &gauge) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, gauge.name());
            out.push(':');
            out.push_str(&self.gauge(gauge).to_string());
        }
        for &gauge in GaugeF::ALL.iter() {
            out.push(',');
            push_json_string(&mut out, gauge.name());
            out.push(':');
            push_json_f64(&mut out, self.gauge_f(gauge));
        }
        out.push_str("},\"histograms\":{");
        for (i, &id) in HistId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = self.histogram(id);
            push_json_string(&mut out, id.name());
            out.push_str(&format!(
                ":{{\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"mean_us\":",
                hist.count(),
                hist.sum_us(),
                hist.min_us(),
                hist.max_us()
            ));
            push_json_f64(&mut out, hist.mean_us());
            out.push_str(&format!(
                ",\"p50_us\":{},\"p99_us\":{}}}",
                hist.p50_us(),
                hist.p99_us()
            ));
        }
        out.push_str("},\"derived\":{");
        let ratios = [
            (
                "lp.ftran.skip_ratio",
                self.skip_ratio(Counter::LpFtranInNnz, Counter::LpFtranDim),
            ),
            (
                "lp.btran.skip_ratio",
                self.skip_ratio(Counter::LpBtranInNnz, Counter::LpBtranDim),
            ),
            ("lp.warm.rate", self.warm_start_rate()),
        ];
        for (i, (name, value)) in ratios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *value);
        }
        out.push_str("}}");
        out
    }

    fn skip_ratio(&self, in_nnz: Counter, dim: Counter) -> f64 {
        let dim = self.counter(dim);
        if dim == 0 {
            return 0.0;
        }
        1.0 - self.counter(in_nnz) as f64 / dim as f64
    }

    /// Fraction of solves that rode an existing basis (warm hit or
    /// warm-with-refactor) out of all warm-classified solves.
    pub fn warm_start_rate(&self) -> f64 {
        let warm = self.counter(Counter::LpWarmHit) + self.counter(Counter::LpWarmRefactor);
        let total =
            warm + self.counter(Counter::LpWarmCold) + self.counter(Counter::LpWarmModeChangeCold);
        if total == 0 {
            return 0.0;
        }
        warm as f64 / total as f64
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every instrumentation site publishes to.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Renders the metric catalogue (name, type, unit, layer) as a
/// markdown table — the machine-checked source of the crate-docs
/// catalogue.
pub fn catalogue_markdown() -> String {
    let mut out = String::from("| metric | type | unit | layer |\n|---|---|---|---|\n");
    for &c in Counter::ALL.iter() {
        out.push_str(&format!(
            "| `{}` | counter | {} | {} |\n",
            c.name(),
            c.unit(),
            c.layer()
        ));
    }
    for &g in Gauge::ALL.iter() {
        out.push_str(&format!(
            "| `{}` | gauge | {} | {} |\n",
            g.name(),
            g.unit(),
            g.layer()
        ));
    }
    for &g in GaugeF::ALL.iter() {
        out.push_str(&format!(
            "| `{}` | gauge (f64) | {} | {} |\n",
            g.name(),
            g.unit(),
            g.layer()
        ));
    }
    for &h in HistId::ALL.iter() {
        out.push_str(&format!(
            "| `{}` | histogram | {} | {} |\n",
            h.name(),
            h.unit(),
            h.layer()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_unique_across_all_kinds() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(GaugeF::ALL.iter().map(|g| g.name()));
        names.extend(HistId::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::LpSolves, 2);
        reg.add(Counter::LpSolves, 3);
        assert_eq!(reg.counter(Counter::LpSolves), 5);
        reg.reset();
        assert_eq!(reg.counter(Counter::LpSolves), 0);
    }

    #[test]
    fn counters_merge_across_threads() {
        let shared = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let local = MetricsRegistry::new();
                    for _ in 0..1000 {
                        local.add(Counter::LpPhase2Pivots, 1);
                        local.record_us(HistId::LpSolveUs, 10);
                    }
                    shared.merge_from(&local);
                });
            }
        });
        assert_eq!(shared.counter(Counter::LpPhase2Pivots), 4000);
        assert_eq!(shared.histogram(HistId::LpSolveUs).count(), 4000);
    }

    #[test]
    fn concurrent_writers_on_one_registry_lose_nothing() {
        let shared = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        shared.add(Counter::LpBoundFlips, 1);
                    }
                });
            }
        });
        assert_eq!(shared.counter(Counter::LpBoundFlips), 4000);
    }

    #[test]
    fn gauges_track_last_value_and_watermark() {
        let reg = MetricsRegistry::new();
        reg.gauge_set(Gauge::LpFactorNnzL, 10);
        reg.gauge_set(Gauge::LpFactorNnzL, 4);
        assert_eq!(reg.gauge(Gauge::LpFactorNnzL), 4);
        reg.gauge_max(Gauge::LpEtaChainMax, 7);
        reg.gauge_max(Gauge::LpEtaChainMax, 3);
        assert_eq!(reg.gauge(Gauge::LpEtaChainMax), 7);
        reg.gauge_f_set(GaugeF::LpScalingSpreadAfter, 4.5);
        assert_eq!(reg.gauge_f(GaugeF::LpScalingSpreadAfter), 4.5);
    }

    #[test]
    fn metrics_json_mentions_every_metric_name() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::LpSolves, 1);
        reg.record_us(HistId::LpSolveUs, 3300);
        let json = reg.metrics_json();
        for &c in Counter::ALL.iter() {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
        for &h in HistId::ALL.iter() {
            assert!(json.contains(h.name()), "missing {}", h.name());
        }
        assert!(json.contains("\"lp.ftran.skip_ratio\""));
        assert!(json.contains("\"schema\":1"));
    }

    #[test]
    fn derived_ratios_divide_safely() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.warm_start_rate(), 0.0);
        reg.add(Counter::LpWarmHit, 3);
        reg.add(Counter::LpWarmCold, 1);
        assert_eq!(reg.warm_start_rate(), 0.75);
        reg.add(Counter::LpFtranDim, 100);
        reg.add(Counter::LpFtranInNnz, 10);
        let json = reg.metrics_json();
        assert!(json.contains("\"lp.ftran.skip_ratio\":0.9"));
    }

    #[test]
    fn catalogue_lists_every_metric() {
        let md = catalogue_markdown();
        for &c in Counter::ALL.iter() {
            assert!(md.contains(c.name()));
        }
        for &h in HistId::ALL.iter() {
            assert!(md.contains(h.name()));
        }
    }
}
