//! The structured JSONL event sink.
//!
//! In `Full` mode, instrumentation sites emit one JSON object per
//! interesting occurrence (a solve completing with its `SolveStats`, a
//! repair escalating a rung, …). Events are rendered eagerly to single
//! JSON lines and buffered in memory behind a mutex, capped so a
//! runaway loop degrades to a drop counter instead of unbounded
//! growth. Exporters write the buffer as a `.jsonl` file.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::full_on;
use crate::json::{push_json_string, JsonValue};

const EVENTS_CAP: usize = 1 << 18;

static EVENTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static EVENTS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Locks the buffer, recovering it if a panicking thread poisoned the
/// mutex — telemetry must keep working after a panic elsewhere (each
/// line is pushed fully formed, so the buffer stays well-formed).
fn lock_events() -> std::sync::MutexGuard<'static, Vec<String>> {
    EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Emits one structured event (no-op unless the mode is `Full`).
///
/// `fields` become the object's keys next to `"event": name`.
pub fn emit_event(name: &str, fields: &[(&str, JsonValue)]) {
    if !full_on() {
        return;
    }
    let mut line = String::with_capacity(48 + fields.len() * 24);
    line.push_str("{\"event\":");
    push_json_string(&mut line, name);
    for (key, value) in fields {
        line.push(',');
        push_json_string(&mut line, key);
        line.push(':');
        value.render(&mut line);
    }
    line.push('}');

    let mut events = lock_events();
    if events.len() >= EVENTS_CAP {
        EVENTS_DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(line);
}

/// Number of buffered events.
pub fn event_count() -> usize {
    lock_events().len()
}

/// Number of events dropped at the cap since the last clear.
pub fn events_dropped_count() -> u64 {
    EVENTS_DROPPED.load(Ordering::Relaxed)
}

/// The buffered events as one newline-terminated JSONL document.
pub fn events_jsonl() -> String {
    let events = lock_events();
    let mut out = String::with_capacity(events.iter().map(|line| line.len() + 1).sum());
    for line in events.iter() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Clears the buffer (and the dropped counter).
pub fn clear_events() {
    lock_events().clear();
    EVENTS_DROPPED.store(0, Ordering::Relaxed);
}

/// Writes [`events_jsonl`] to `path`.
pub fn write_events_jsonl(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, events_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_dropped_silently_when_mode_is_not_full() {
        if crate::mode() != crate::ObsMode::Off {
            return; // global mode flipped by a concurrent test
        }
        let before = event_count();
        emit_event("lp.solve", &[("iterations", JsonValue::U64(12))]);
        assert_eq!(event_count(), before);
    }

    #[test]
    fn jsonl_lines_are_one_object_per_line() {
        // Render path test without the global buffer: build the line
        // the way emit_event does.
        let mut line = String::new();
        line.push_str("{\"event\":");
        push_json_string(&mut line, "lp.solve");
        line.push(',');
        push_json_string(&mut line, "iterations");
        line.push(':');
        JsonValue::U64(12).render(&mut line);
        line.push('}');
        assert_eq!(line, "{\"event\":\"lp.solve\",\"iterations\":12}");
    }
}
