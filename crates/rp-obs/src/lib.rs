//! `rp-obs` — the workspace's dependency-free telemetry core.
//!
//! One crate owns every way the replica-placement stack measures
//! itself:
//!
//! * a [`MetricsRegistry`] of atomic **counters**, **gauges** and
//!   fixed-bucket latency **histograms** with exact nearest-rank
//!   p50/p99 extraction ([`Histogram`]);
//! * RAII [`Span`] scoped timers with thread-local span stacks that
//!   aggregate per worker and merge across the λ-sharded pool
//!   ([`span`], [`timed_span`]);
//! * a structured **JSONL event sink** ([`emit_event`]);
//! * a **chrome://tracing** exporter ([`write_chrome_trace`]) — load
//!   the emitted `.trace.json` straight into chrome://tracing or
//!   Perfetto;
//! * a per-solve **phase profiler** ([`phase_timer`], [`PhaseTimes`])
//!   attributing solver wall time to a fixed set of simplex phases;
//! * a **flight recorder** ([`record_solve`], [`note_anomaly`]) — a
//!   bounded ring of recent solves snapshotted to a JSONL dump when
//!   an anomalous solve fires.
//!
//! Everything is gated by a single global [`ObsMode`]:
//!
//! | mode | counters + histograms | spans → trace | JSONL events |
//! |---|---|---|---|
//! | `Off` | – | – | – |
//! | `Counters` | ✓ | – | – |
//! | `Full` | ✓ | ✓ | ✓ |
//!
//! `Off` is the default and compiles down to one relaxed atomic load
//! per instrumentation site — instrumented and uninstrumented runs are
//! bit-identical (observation never feeds back into any solver
//! decision; the proptest suite pins this) and the disabled overhead
//! stays under the measurement noise floor (the `--smoke-obs` gate in
//! `rp-bench` enforces < 2%).
//!
//! Select the mode programmatically with [`set_mode`] or via the
//! `RP_OBS` environment variable (`off` / `counters` / `full`, read by
//! [`init_from_env`]).
//!
#![doc = include_str!("catalogue.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

mod histogram;
mod json;
mod profile;
mod recorder;
mod registry;
mod sink;
mod span;
mod trace;

pub use histogram::{nearest_rank, Histogram, BUCKET_COUNT, BUCKET_EDGES_US};
pub use json::JsonValue;
pub use profile::{
    phase_timer, reset_solve_profile, take_solve_profile, Phase, PhaseTimer, PhaseTimes,
    PHASE_COUNT,
};
pub use recorder::{
    clear_flight_recorder, flight_recorder, flight_snapshot, last_flight_dump, note_anomaly,
    record_solve, AnomalyKind, FlightRecorder, SolveRecord, FLIGHT_RING_CAP,
};
pub use registry::{catalogue_markdown, global, Counter, Gauge, GaugeF, HistId, MetricsRegistry};
pub use sink::{
    clear_events, emit_event, event_count, events_dropped_count, events_jsonl, write_events_jsonl,
};
pub use span::{
    current_span_depth, flush_thread_trace, span, span_labeled, timed_span, timed_span_labeled,
    Span, SpanKind,
};
pub use trace::{
    chrome_trace_json, clear_trace, trace_dropped_count, trace_event_count, write_chrome_trace,
    TraceEvent,
};

/// How much the process observes itself. See the crate docs for the
/// gating table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(u8)]
pub enum ObsMode {
    /// No observation: every site is one relaxed load and a branch.
    #[default]
    Off = 0,
    /// Counters, gauges and histograms only.
    Counters = 1,
    /// Counters plus trace spans and JSONL events.
    Full = 2,
}

impl ObsMode {
    /// The wire name (`"off"` / `"counters"` / `"full"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Counters => "counters",
            ObsMode::Full => "full",
        }
    }

    /// Parses a wire name (case-insensitive).
    pub fn parse(s: &str) -> Option<ObsMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" => Some(ObsMode::Off),
            "counters" | "1" => Some(ObsMode::Counters),
            "full" | "2" => Some(ObsMode::Full),
            _ => None,
        }
    }
}

static MODE: AtomicU8 = AtomicU8::new(ObsMode::Off as u8);

/// Sets the global observability mode.
pub fn set_mode(mode: ObsMode) {
    if mode != ObsMode::Off {
        span::anchor_epoch();
    }
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current global mode.
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => ObsMode::Counters,
        2 => ObsMode::Full,
        _ => ObsMode::Off,
    }
}

/// `true` when counters (and histograms) should record — the single
/// relaxed load every instrumentation site starts with.
#[inline(always)]
pub fn counters_on() -> bool {
    MODE.load(Ordering::Relaxed) != ObsMode::Off as u8
}

/// `true` when trace spans and JSONL events should record too.
#[inline(always)]
pub fn full_on() -> bool {
    MODE.load(Ordering::Relaxed) == ObsMode::Full as u8
}

/// Applies `RP_OBS` from the environment (no-op when unset/invalid).
pub fn init_from_env() {
    if let Some(mode) = std::env::var("RP_OBS")
        .ok()
        .and_then(|s| ObsMode::parse(&s))
    {
        set_mode(mode);
    }
}

/// Increments `counter` by 1 in the global registry (mode-gated).
#[inline]
pub fn incr(counter: Counter) {
    if counters_on() {
        global().add(counter, 1);
    }
}

/// Adds `n` to `counter` in the global registry (mode-gated; zero adds
/// are skipped).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if n > 0 && counters_on() {
        global().add(counter, n);
    }
}

/// Sets `gauge` in the global registry (mode-gated).
#[inline]
pub fn gauge_set(gauge: Gauge, value: u64) {
    if counters_on() {
        global().gauge_set(gauge, value);
    }
}

/// Raises `gauge` to `value` if larger (mode-gated).
#[inline]
pub fn gauge_max(gauge: Gauge, value: u64) {
    if counters_on() {
        global().gauge_max(gauge, value);
    }
}

/// Sets float gauge `gauge` (mode-gated).
#[inline]
pub fn gauge_f_set(gauge: GaugeF, value: f64) {
    if counters_on() {
        global().gauge_f_set(gauge, value);
    }
}

/// Records a µs sample into histogram `id` (mode-gated).
#[inline]
pub fn record_us(id: HistId, value_us: u64) {
    if counters_on() {
        global().record_us(id, value_us);
    }
}

/// Renders the global registry as metrics JSON.
pub fn metrics_json() -> String {
    global().metrics_json()
}

/// Writes [`metrics_json`] to `path`.
pub fn write_metrics_json(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, metrics_json())
}

/// Resets everything: the global registry, the trace buffer, the
/// event sink and the flight recorder. Benchmarks call this between
/// phases.
pub fn reset_all() {
    global().reset();
    clear_trace();
    clear_events();
    clear_flight_recorder();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [ObsMode::Off, ObsMode::Counters, ObsMode::Full] {
            assert_eq!(ObsMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(ObsMode::parse("FULL"), Some(ObsMode::Full));
        assert_eq!(ObsMode::parse("bogus"), None);
    }

    #[test]
    fn catalogue_docs_match_the_enums() {
        let doc = include_str!("catalogue.md");
        let generated = catalogue_markdown();
        // Every generated row must appear verbatim in the doc file and
        // the doc file must list exactly as many metrics — no drift in
        // either direction.
        for row in generated.lines().skip(2) {
            assert!(doc.contains(row), "catalogue.md is missing row: {row}");
        }
        let doc_rows = doc.lines().filter(|l| l.starts_with("| `")).count();
        let generated_rows = generated.lines().skip(2).count();
        assert_eq!(doc_rows, generated_rows, "catalogue.md has extra rows");
    }

    #[test]
    fn the_global_registry_is_one_instance() {
        assert!(std::ptr::eq(global(), global()));
    }
}
