//! Flight recorder: a bounded ring of the most recent solve records,
//! snapshotted to a JSONL dump when an anomaly fires.
//!
//! Rare-but-inevitable bad solves under churn traces are not
//! reproducible on demand; the recorder keeps the last
//! [`FLIGHT_RING_CAP`] [`SolveRecord`]s (instance shape, warm-start
//! class, iteration and phase breakdown, budget state) in memory so
//! the moment one goes wrong the *context* — the solves leading up to
//! it — is captured too. Triggers ([`AnomalyKind`]): a solve slower
//! than k× the running median, a dense-oracle escalation, a
//! `SolveBudget` miss, an rp-online rollback.
//!
//! Everything is mode-gated like the rest of the crate: with
//! observation off nothing records, and recording never feeds back
//! into solver decisions.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json::push_json_string;
use crate::profile::{Phase, PhaseTimes};
use crate::registry::Counter;

/// Capacity of the global flight-recorder ring.
pub const FLIGHT_RING_CAP: usize = 64;

/// A solve is anomalously slow when it exceeds this multiple of the
/// running median over the recent window.
const SLOW_FACTOR: f64 = 8.0;

/// Slow detection stays quiet until this many solves have been seen
/// (a cold median is meaningless).
const MIN_SAMPLES: usize = 16;

/// Why a flight-recorder dump was triggered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnomalyKind {
    /// Solve wall time exceeded k× the running median.
    Slow,
    /// A `SolveBudget` (deadline or iteration cap) was missed.
    BudgetMiss,
    /// `solve_lp_hardened` escalated all the way to the dense oracle.
    DenseOracle,
    /// An rp-online apply was rolled back.
    Rollback,
}

impl AnomalyKind {
    /// The wire name used as the dump's `reason`.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::Slow => "slow",
            AnomalyKind::BudgetMiss => "budget_miss",
            AnomalyKind::DenseOracle => "dense_oracle",
            AnomalyKind::Rollback => "rollback",
        }
    }

    fn counter(self) -> Counter {
        match self {
            AnomalyKind::Slow => Counter::RecAnomalySlow,
            AnomalyKind::BudgetMiss => Counter::RecAnomalyBudgetMiss,
            AnomalyKind::DenseOracle => Counter::RecAnomalyDenseOracle,
            AnomalyKind::Rollback => Counter::RecAnomalyRollback,
        }
    }
}

/// One completed LP solve, as remembered by the flight recorder.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveRecord {
    /// Monotonic sequence number, assigned by the recorder.
    pub seq: u64,
    /// Rows of the working form (after presolve).
    pub rows: u64,
    /// Structural columns of the working form.
    pub cols: u64,
    /// Warm-start classification (`"cold"`, `"hit"`, ...).
    pub warm: &'static str,
    /// Terminal solution status (`"optimal"`, `"iteration_limit"`, ...).
    pub status: String,
    /// Total simplex iterations (primal + dual pivots + bound flips).
    pub iterations: u64,
    /// Measured solve wall time in microseconds.
    pub solve_us: u64,
    /// `true` when a `SolveBudget` deadline/iteration cap was missed.
    pub budget_missed: bool,
    /// The typed stop reason when the solve ended early.
    pub stop_reason: Option<String>,
    /// Per-phase wall-time breakdown of this solve.
    pub phases: PhaseTimes,
}

#[derive(Default)]
struct RecState {
    ring: VecDeque<SolveRecord>,
    next_seq: u64,
    recent_us: VecDeque<u64>,
    last_dump: Option<String>,
}

/// A bounded ring of recent solves with anomaly detection. The
/// process-wide instance lives behind [`flight_recorder`];
/// instantiable for tests.
pub struct FlightRecorder {
    cap: usize,
    slow_factor: f64,
    min_samples: usize,
    state: Mutex<RecState>,
}

impl FlightRecorder {
    /// A recorder holding the last `cap` records, flagging solves
    /// slower than `slow_factor`× the running median once
    /// `min_samples` solves have been seen.
    pub fn new(cap: usize, slow_factor: f64, min_samples: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            slow_factor,
            min_samples: min_samples.max(1),
            state: Mutex::new(RecState::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pushes a record (evicting the oldest at capacity), assigns its
    /// sequence number and returns the anomaly it trips, if any.
    pub fn record(&self, mut record: SolveRecord) -> Option<AnomalyKind> {
        let mut state = self.lock();
        record.seq = state.next_seq;
        state.next_seq += 1;
        let anomaly = if record.budget_missed {
            Some(AnomalyKind::BudgetMiss)
        } else if state.recent_us.len() >= self.min_samples {
            let mut sorted: Vec<u64> = state.recent_us.iter().copied().collect();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            (median > 0 && record.solve_us as f64 > self.slow_factor * median as f64)
                .then_some(AnomalyKind::Slow)
        } else {
            None
        };
        state.recent_us.push_back(record.solve_us);
        while state.recent_us.len() > self.cap {
            state.recent_us.pop_front();
        }
        state.ring.push_back(record);
        while state.ring.len() > self.cap {
            state.ring.pop_front();
        }
        anomaly
    }

    /// Snapshots the ring to a JSONL dump (one meta line, then one
    /// line per record, oldest first) and remembers it as the latest
    /// dump.
    pub fn snapshot(&self, reason: &str) -> String {
        let mut state = self.lock();
        let mut out = String::with_capacity(256 + 256 * state.ring.len());
        out.push_str("{\"type\":\"flight_dump\",\"schema\":1,\"reason\":");
        push_json_string(&mut out, reason);
        out.push_str(&format!(
            ",\"records\":{},\"next_seq\":{}}}\n",
            state.ring.len(),
            state.next_seq
        ));
        for record in state.ring.iter() {
            push_record_json(&mut out, record);
            out.push('\n');
        }
        state.last_dump = Some(out.clone());
        out
    }

    /// The most recent dump, if any anomaly has fired.
    pub fn last_dump(&self) -> Option<String> {
        self.lock().last_dump.clone()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// `true` when no solve has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequence numbers currently in the ring, oldest first.
    pub fn seqs(&self) -> Vec<u64> {
        self.lock().ring.iter().map(|r| r.seq).collect()
    }

    /// Drops every record, the latency window and the last dump.
    pub fn clear(&self) {
        *self.lock() = RecState::default();
    }
}

fn push_record_json(out: &mut String, record: &SolveRecord) {
    out.push_str(&format!(
        "{{\"type\":\"solve\",\"seq\":{},\"rows\":{},\"cols\":{},\"warm\":",
        record.seq, record.rows, record.cols
    ));
    push_json_string(out, record.warm);
    out.push_str(",\"status\":");
    push_json_string(out, &record.status);
    out.push_str(&format!(
        ",\"iterations\":{},\"solve_us\":{},\"budget_missed\":{},\"stop_reason\":",
        record.iterations, record.solve_us, record.budget_missed
    ));
    match &record.stop_reason {
        Some(reason) => push_json_string(out, reason),
        None => out.push_str("null"),
    }
    out.push_str(",\"phase_ns\":{");
    for (i, phase) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, phase.name());
        out.push(':');
        out.push_str(&record.phases.nanos(*phase).to_string());
    }
    out.push_str("},\"phase_calls\":{");
    for (i, phase) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, phase.name());
        out.push(':');
        out.push_str(&record.phases.calls(*phase).to_string());
    }
    out.push_str(&format!(
        "}},\"phase_total_ns\":{}}}",
        record.phases.total_nanos()
    ));
}

static GLOBAL_REC: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder every solve reports to.
pub fn flight_recorder() -> &'static FlightRecorder {
    GLOBAL_REC.get_or_init(|| FlightRecorder::new(FLIGHT_RING_CAP, SLOW_FACTOR, MIN_SAMPLES))
}

/// Records a completed solve into the global ring (mode-gated). If
/// the record itself trips an anomaly (budget miss, k×-median slow
/// solve) the ring is dumped via [`note_anomaly`].
pub fn record_solve(record: SolveRecord) {
    if !crate::counters_on() {
        return;
    }
    crate::global().add(Counter::RecRecords, 1);
    if let Some(kind) = flight_recorder().record(record) {
        note_anomaly(kind);
    }
}

/// Reports an anomaly: bumps the anomaly counters and snapshots the
/// global ring to a JSONL dump (retrievable via [`last_flight_dump`];
/// also written to the path in `RP_FLIGHT_DUMP` when that is set).
/// Mode-gated; a no-op while observation is off.
pub fn note_anomaly(kind: AnomalyKind) {
    if !crate::counters_on() {
        return;
    }
    let registry = crate::global();
    registry.add(Counter::RecAnomalies, 1);
    registry.add(kind.counter(), 1);
    let dump = flight_recorder().snapshot(kind.as_str());
    registry.add(Counter::RecDumps, 1);
    if let Ok(path) = std::env::var("RP_FLIGHT_DUMP") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, &dump);
        }
    }
}

/// Snapshots the global ring *without* counting an anomaly — used by
/// the perf-budget gate to attach context to a breach report.
pub fn flight_snapshot(reason: &str) -> String {
    flight_recorder().snapshot(reason)
}

/// The latest anomaly dump from the global recorder, if any.
pub fn last_flight_dump() -> Option<String> {
    flight_recorder().last_dump()
}

/// Clears the global recorder (ring, window and last dump).
pub fn clear_flight_recorder() {
    flight_recorder().clear();
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    fn record_us(solve_us: u64) -> SolveRecord {
        SolveRecord {
            rows: 10,
            cols: 20,
            warm: "cold",
            status: "optimal".to_string(),
            iterations: 5,
            solve_us,
            ..SolveRecord::default()
        }
    }

    #[test]
    fn ring_wraps_oldest_first() {
        let rec = FlightRecorder::new(4, 8.0, 1000);
        for _ in 0..10 {
            assert_eq!(rec.record(record_us(100)), None);
        }
        assert_eq!(rec.len(), 4);
        // Records 0..=5 were evicted, oldest first.
        assert_eq!(rec.seqs(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn slow_solve_trips_after_min_samples() {
        let rec = FlightRecorder::new(64, 8.0, 4);
        // Below min_samples nothing fires, however slow.
        for _ in 0..3 {
            assert_eq!(rec.record(record_us(100)), None);
        }
        assert_eq!(rec.record(record_us(100_000)), None); // 4th: window still 3
                                                          // Window now holds 4 samples; median ~100, 8× = 800.
        assert_eq!(rec.record(record_us(799)), None);
        assert_eq!(rec.record(record_us(100)), None);
        assert_eq!(rec.record(record_us(9_000)), Some(AnomalyKind::Slow));
    }

    #[test]
    fn budget_miss_always_trips() {
        let rec = FlightRecorder::new(64, 8.0, 16);
        let mut record = record_us(10);
        record.budget_missed = true;
        record.stop_reason = Some("deadline exceeded".to_string());
        assert_eq!(rec.record(record), Some(AnomalyKind::BudgetMiss));
    }

    #[test]
    fn snapshot_is_line_oriented_json_with_meta_header() {
        let rec = FlightRecorder::new(8, 8.0, 16);
        let mut record = record_us(42);
        record.phases.record(Phase::Ftran, 1000);
        rec.record(record);
        rec.record(record_us(43));
        let dump = rec.snapshot("slow");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"flight_dump\""));
        assert!(lines[0].contains("\"reason\":\"slow\""));
        assert!(lines[0].contains("\"records\":2"));
        assert!(lines[1].contains("\"type\":\"solve\""));
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[1].contains("\"ftran\":1000"));
        assert!(lines[1].contains("\"phase_total_ns\":1000"));
        assert!(lines[2].contains("\"seq\":1"));
        for line in &lines {
            // Each line is one balanced JSON object (the exporter is
            // hand-rolled; pin the brace balance at least).
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced: {line}"
            );
        }
        assert_eq!(rec.last_dump().as_deref(), Some(dump.as_str()));
    }

    #[test]
    fn clear_resets_ring_window_and_dump() {
        let rec = FlightRecorder::new(8, 8.0, 2);
        rec.record(record_us(10));
        rec.record(record_us(10));
        rec.snapshot("manual");
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.last_dump(), None);
        // Sequence numbering restarts and the slow window is cold again.
        assert_eq!(rec.record(record_us(1_000_000)), None);
        assert_eq!(rec.seqs(), vec![0]);
    }
}
