//! # replica-placement
//!
//! Umbrella crate for the reproduction of *"Strategies for Replica
//! Placement in Tree Networks"* (Benoit, Rehn, Robert; IPPS 2007). It
//! re-exports the public API of the workspace crates so applications can
//! depend on a single crate:
//!
//! * [`tree`] — distribution trees (`rp-tree`);
//! * [`lp`] — the LP/MILP substrate (`rp-lp`);
//! * [`core`] — problems, policies, exact algorithms, heuristics and ILP
//!   formulations (`rp-core`);
//! * [`obs`] — the dependency-free telemetry core: metrics registry,
//!   scoped spans, trace/metrics exporters (`rp-obs`);
//! * [`workloads`] — random tree/workload generators and the paper's
//!   hand-crafted examples (`rp-workloads`);
//! * [`experiments`] — the evaluation harness behind Figures 9–12
//!   (`rp-experiments`).
//!
//! ```
//! use replica_placement::prelude::*;
//!
//! let mut b = TreeBuilder::new();
//! let root = b.add_root();
//! let hub = b.add_node(root);
//! b.add_clients(hub, 3);
//! let tree = b.build().unwrap();
//!
//! let problem = ProblemInstance::replica_counting(tree, vec![4, 4, 4], 10);
//! let placement = Heuristic::MixedBest.run(&problem).unwrap();
//! assert!(placement.is_valid(&problem, Policy::Multiple));
//! ```

#![forbid(unsafe_code)]

pub use rp_core as core;
pub use rp_experiments as experiments;
pub use rp_lp as lp;
pub use rp_obs as obs;
pub use rp_online as online;
pub use rp_tree as tree;
pub use rp_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use rp_core::{Heuristic, Placement, Policy, ProblemBuilder, ProblemInstance, ProblemKind};
    pub use rp_experiments::{ExperimentConfig, FigureId};
    pub use rp_online::{ApplyOutcome, PlacementEngine};
    pub use rp_tree::{ClientId, NodeId, TreeBuilder, TreeNetwork, TreeStats};
    pub use rp_workloads::{PlatformKind, TreeGenConfig, TreeShape, WorkloadConfig};
}
