//! Property-based tests (proptest) over randomly generated trees and
//! workloads: structural invariants of the tree substrate, solver
//! consistency on arbitrary instances, and round-trips of the text
//! serialisation.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use proptest::prelude::*;

use replica_placement::core::exact::solve_multiple_homogeneous;
use replica_placement::core::ilp::{lower_bound, BoundKind};
use replica_placement::lp::{solve_lp, Cmp, LinExpr, Model, Status};
use replica_placement::prelude::*;
use replica_placement::tree::text::{parse_tree, write_tree};
use replica_placement::tree::TreeBuilder;

/// Strategy: a random tree described by parent pointers. The raw parent
/// value for internal node `i + 1` is reduced modulo `i + 1`, so every
/// parent reference points at an earlier node; clients attach to a
/// random node each.
fn tree_strategy(max_nodes: usize, max_clients: usize) -> impl Strategy<Value = TreeNetwork> {
    (1..=max_nodes, 1..=max_clients)
        .prop_flat_map(move |(nodes, clients)| {
            let node_parents = proptest::collection::vec(0usize..max_nodes, nodes - 1);
            let client_parents = proptest::collection::vec(0usize..nodes, clients);
            (node_parents, client_parents)
        })
        .prop_map(|(node_parents, client_parents)| {
            let mut builder = TreeBuilder::new();
            let mut handles = vec![builder.add_root()];
            for (i, raw) in node_parents.into_iter().enumerate() {
                let parent = handles[raw % (i + 1)];
                handles.push(builder.add_node(parent));
            }
            for parent in client_parents {
                builder.add_client(handles[parent]);
            }
            builder.build().expect("constructed trees are valid")
        })
}

/// Strategy: a full homogeneous problem instance.
fn homogeneous_instance_strategy() -> impl Strategy<Value = ProblemInstance> {
    (tree_strategy(8, 8), 1u64..=12)
        .prop_flat_map(|(tree, capacity)| {
            let clients = tree.num_clients();
            (
                Just(tree),
                Just(capacity),
                proptest::collection::vec(0u64..=10, clients),
            )
        })
        .prop_map(|(tree, capacity, requests)| {
            ProblemInstance::replica_counting(tree, requests, capacity)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_text_round_trips(tree in tree_strategy(12, 12)) {
        let text = write_tree(&tree);
        let parsed = parse_tree(&text).expect("writer output must parse");
        prop_assert_eq!(parsed, tree);
    }

    #[test]
    fn ancestors_always_end_at_the_root(tree in tree_strategy(12, 12)) {
        let root = tree.root();
        for client in tree.client_ids() {
            let ancestors = tree.ancestors_of_client_vec(client);
            prop_assert!(!ancestors.is_empty());
            prop_assert_eq!(*ancestors.last().unwrap(), root);
            // The lazy iterator agrees with the collecting shim and
            // reports its exact length.
            prop_assert_eq!(tree.ancestors_of_client(client).len(), ancestors.len());
            prop_assert!(tree.ancestors_of_client(client).eq(ancestors.iter().copied()));
            // Each consecutive pair is a parent link.
            for pair in ancestors.windows(2) {
                prop_assert_eq!(tree.parent_of_node(pair[0]), Some(pair[1]));
            }
        }
    }

    #[test]
    fn traversals_cover_each_node_exactly_once(tree in tree_strategy(16, 8)) {
        let total = tree.num_nodes();
        for order in [tree.bfs_nodes(), tree.dfs_preorder_nodes(), tree.postorder_nodes()] {
            prop_assert_eq!(order.len(), total);
            let unique: std::collections::HashSet<_> = order.iter().copied().collect();
            prop_assert_eq!(unique.len(), total);
        }
    }

    #[test]
    fn subtree_requests_add_up(
        instance in homogeneous_instance_strategy()
    ) {
        // The root's subtree contains every request; a node's subtree
        // total equals its children's totals plus its own clients.
        let tree = instance.tree();
        prop_assert_eq!(instance.subtree_requests(tree.root()), instance.total_requests());
        for node in tree.node_ids() {
            let children_sum: u64 = tree
                .child_nodes(node)
                .iter()
                .map(|&c| instance.subtree_requests(c))
                .sum::<u64>()
                + tree
                    .child_clients(node)
                    .iter()
                    .map(|&c| instance.requests(c))
                    .sum::<u64>();
            prop_assert_eq!(instance.subtree_requests(node), children_sum);
        }
    }

    #[test]
    fn optimal_multiple_solutions_are_valid_and_lp_bounded(
        instance in homogeneous_instance_strategy()
    ) {
        match solve_multiple_homogeneous(&instance).into_placement() {
            Some(placement) => {
                prop_assert!(placement.is_valid(&instance, Policy::Multiple));
                // Every heuristic that succeeds costs at least as much.
                for heuristic in Heuristic::ALL {
                    if let Some(other) = heuristic.run(&instance) {
                        prop_assert!(other.is_valid(&instance, heuristic.policy()));
                        prop_assert!(other.cost(&instance) >= placement.cost(&instance));
                    }
                }
                // The LP bound does not exceed the optimal cost.
                if let Some(bound) = lower_bound(&instance, BoundKind::Rational) {
                    prop_assert!(bound <= placement.cost(&instance) as f64 + 1e-6);
                }
            }
            None => {
                // If the optimal algorithm says infeasible, MG must fail too.
                prop_assert!(Heuristic::Mg.run(&instance).is_none());
            }
        }
    }

    #[test]
    fn heuristic_placements_satisfy_capacity_constraints(
        instance in homogeneous_instance_strategy()
    ) {
        for heuristic in Heuristic::ALL {
            if let Some(placement) = heuristic.run(&instance) {
                let loads = placement.server_loads(instance.tree().num_nodes());
                for (server, &load) in loads.iter() {
                    prop_assert!(load <= instance.capacity(server));
                }
                for client in instance.tree().client_ids() {
                    prop_assert_eq!(
                        placement.assigned_requests(client),
                        instance.requests(client)
                    );
                }
            }
        }
    }

    #[test]
    fn simplex_solutions_are_feasible_and_consistent(
        // Random small LPs: minimise a positive combination subject to
        // cover-style constraints; they are always feasible and bounded.
        costs in proptest::collection::vec(1.0f64..10.0, 3..6),
        demands in proptest::collection::vec(1.0f64..20.0, 2..5),
    ) {
        let mut model = Model::minimize();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| model.add_var(format!("x{i}"), 0.0, Some(50.0), c))
            .collect();
        for (j, &demand) in demands.iter().enumerate() {
            // Each demand is covered by a cyclic pair of variables.
            let a = vars[j % vars.len()];
            let b = vars[(j + 1) % vars.len()];
            model.add_constraint(
                format!("d{j}"),
                LinExpr::var(a).plus(1.0, b),
                Cmp::Ge,
                demand,
            );
        }
        let solution = solve_lp(&model);
        prop_assert_eq!(solution.status, Status::Optimal);
        prop_assert!(model.is_feasible(&solution.values, 1e-6));
        let recomputed = model.objective_value(&solution.values);
        prop_assert!((recomputed - solution.objective).abs() < 1e-6);
    }
}
