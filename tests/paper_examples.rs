//! Integration tests replaying the paper's worked examples (Sections 3
//! and 4) through the public API of the umbrella crate: every claim made
//! about Figures 1–5, 7 and 8 is checked end to end (exact solvers,
//! heuristics and LP bounds together).

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use replica_placement::core::bounds::replica_counting_lower_bound;
use replica_placement::core::exact::{optimal_cost, solve_multiple_homogeneous};
use replica_placement::core::heuristics::lp_guided::{lp_guided, lp_guided_multi};
use replica_placement::core::ilp::{
    exact_optimal_cost, integral_lower_bound, lower_bound, multi_lower_bound, BoundKind,
};
use replica_placement::core::multi::solve_multi_ilp;
use replica_placement::prelude::*;
use replica_placement::workloads::paper_examples::*;

type PolicyCosts = (Option<u64>, Option<u64>, Option<u64>);

#[test]
fn figure1_policy_feasibility_matrix() {
    // (clients, requests) -> (Closest, Upwards, Multiple) optimal costs.
    let cases: Vec<((usize, u64), PolicyCosts)> = vec![
        ((1, 1), (Some(1), Some(1), Some(1))),
        ((2, 1), (None, Some(2), Some(2))),
        ((1, 2), (None, None, Some(2))),
    ];
    for ((clients, requests), (closest, upwards, multiple)) in cases {
        let p = figure1(clients, requests);
        assert_eq!(optimal_cost(&p, Policy::Closest), closest);
        assert_eq!(optimal_cost(&p, Policy::Upwards), upwards);
        assert_eq!(optimal_cost(&p, Policy::Multiple), multiple);
        // The ILP agrees with the exhaustive oracle.
        assert_eq!(exact_optimal_cost(&p, Policy::Closest), closest);
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), upwards);
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), multiple);
    }
}

#[test]
fn figure2_upwards_is_much_better_than_closest() {
    for n in [2u64, 3] {
        let p = figure2(n);
        let closest = optimal_cost(&p, Policy::Closest).expect("Closest is feasible here");
        let upwards = optimal_cost(&p, Policy::Upwards).expect("Upwards is feasible here");
        assert_eq!(upwards, 3, "n = {n}");
        assert_eq!(closest, n + 2, "n = {n}");
        // The heuristics never beat the respective optima.
        for heuristic in Heuristic::ALL {
            if let Some(placement) = heuristic.run(&p) {
                assert!(placement.is_valid(&p, heuristic.policy()));
                let optimum = optimal_cost(&p, heuristic.policy()).unwrap();
                assert!(placement.cost(&p) >= optimum, "{heuristic} on n = {n}");
            }
        }
    }
}

#[test]
fn figure3_multiple_approaches_factor_two_over_upwards() {
    for n in [2u64, 3] {
        let p = figure3(n);
        let multiple = optimal_cost(&p, Policy::Multiple).unwrap();
        let upwards = optimal_cost(&p, Policy::Upwards).unwrap();
        assert_eq!(multiple, n + 1);
        assert_eq!(upwards, 2 * n);
        // The polynomial algorithm achieves the Multiple optimum.
        let algorithmic = solve_multiple_homogeneous(&p)
            .into_placement()
            .expect("feasible")
            .num_replicas() as u64;
        assert_eq!(algorithmic, multiple);
    }
}

#[test]
fn figure4_multiple_is_arbitrarily_better_than_upwards_on_heterogeneous_nodes() {
    for k in [5u64, 20] {
        let n = 3;
        let p = figure4(n, k);
        let multiple = optimal_cost(&p, Policy::Multiple).unwrap();
        let upwards = optimal_cost(&p, Policy::Upwards).unwrap();
        assert_eq!(multiple, 2 * n);
        assert!(upwards >= k * n, "k = {k}");
        // The ratio grows linearly in K.
        assert!(upwards as f64 / multiple as f64 >= k as f64 / 2.0);
    }
}

#[test]
fn figure5_no_policy_approaches_the_trivial_bound() {
    let (n, w) = (5u64, 10u64);
    let p = figure5(n, w);
    assert_eq!(replica_counting_lower_bound(&p), Some(2));
    for policy in Policy::ALL {
        assert_eq!(optimal_cost(&p, policy), Some(n + 1), "{policy}");
    }
    // The LP-based bound is also far below the integer optimum here —
    // this is intrinsic to the instance, not a solver artefact.
    let bound = lower_bound(&p, BoundKind::Rational).unwrap();
    assert!(integral_lower_bound(bound) <= n + 1);
}

#[test]
fn figure7_three_partition_gadget_behaves_as_in_theorem_2() {
    // Solvable 3-PARTITION -> Upwards cost m; the Multiple policy always
    // copes as long as the totals match (it may split clients).
    let solvable = figure7(&[5, 4, 3, 5, 4, 3], 12);
    assert_eq!(optimal_cost(&solvable, Policy::Upwards), Some(2));
    assert_eq!(optimal_cost(&solvable, Policy::Multiple), Some(2));

    let unsolvable = figure7(&[7, 7, 7, 1, 1, 1], 12);
    assert_eq!(optimal_cost(&unsolvable, Policy::Upwards), None);
    assert_eq!(optimal_cost(&unsolvable, Policy::Multiple), Some(2));
}

#[test]
fn figure8_two_partition_gadget_behaves_as_in_theorem_3() {
    let solvable = figure8(&[4, 2, 6]); // subset {4, 2} sums to S/2 = 6
    let expected = 4 + 2 + 6 + 1; // S + 1
    assert_eq!(optimal_cost(&solvable, Policy::Closest), Some(expected));
    assert_eq!(optimal_cost(&solvable, Policy::Multiple), Some(expected));

    let unsolvable = figure8(&[1, 1, 10]); // no subset sums to 6
    assert!(optimal_cost(&unsolvable, Policy::Closest).unwrap() > expected);
}

#[test]
fn figure1_bandwidth_golden_optima() {
    // (1, 1): one replica regardless of the uplink bound — a dead link
    // only forces the replica onto s1.
    for bw in [0u64, 1, 5] {
        let p = figure1_bandwidth(1, 1, bw);
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), Some(1), "bw={bw}");
    }
    // (2, 1): both nodes are needed and one request must cross the
    // link: bw = 0 starves it, bw >= 1 restores the unconstrained cost.
    let starved = figure1_bandwidth(2, 1, 0);
    assert_eq!(exact_optimal_cost(&starved, Policy::Multiple), None);
    assert_eq!(lower_bound(&starved, BoundKind::Rational), None);
    for bw in [1u64, 3] {
        let p = figure1_bandwidth(2, 1, bw);
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), Some(2), "bw={bw}");
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), Some(2), "bw={bw}");
    }
}

#[test]
fn bandwidth_bottleneck_golden_optima() {
    // The hand-computed table from the constructor docs:
    // bw >= 4 -> 10 (all at the root), 1..=3 -> 13 (both replicas),
    // 0 -> infeasible.
    for bw in [4u64, 10] {
        let p = bandwidth_bottleneck(bw);
        assert_eq!(
            exact_optimal_cost(&p, Policy::Multiple),
            Some(10),
            "bw={bw}"
        );
        // Single-server policies can still send the whole client up.
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), Some(10), "bw={bw}");
        assert_eq!(exact_optimal_cost(&p, Policy::Closest), Some(10), "bw={bw}");
    }
    for bw in [1u64, 2, 3] {
        let p = bandwidth_bottleneck(bw);
        assert_eq!(
            exact_optimal_cost(&p, Policy::Multiple),
            Some(13),
            "bw={bw}"
        );
        // Upwards/Closest cannot split the client: mid alone is too
        // small and the link blocks the root.
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), None, "bw={bw}");
        assert_eq!(exact_optimal_cost(&p, Policy::Closest), None, "bw={bw}");
    }
    let dead = bandwidth_bottleneck(0);
    assert_eq!(exact_optimal_cost(&dead, Policy::Multiple), None);

    // The rational bound is 4 for every feasible uplink (unit
    // cost-per-request at both nodes): the integrality gap is intrinsic.
    for bw in [2u64, 4] {
        let p = bandwidth_bottleneck(bw);
        let bound = lower_bound(&p, BoundKind::Rational).expect("feasible relaxation");
        assert!((bound - 4.0).abs() < 1e-6, "bw={bw}: bound {bound}");
        assert_eq!(integral_lower_bound(bound), 4);
    }
}

#[test]
fn multi_object_coupling_golden_optimum() {
    let p = multi_object_coupling();
    let exact = solve_multi_ilp(&p).expect("feasible instance");
    exact.validate(&p, Policy::Multiple).expect("valid");
    // Hand-computed: object 0 at the hub (1) + object 1 at the root (6).
    assert_eq!(exact.cost(&p), 7);
    // The hand-computed rational bound: 4·(1/4) + 4·(6/10) = 3.4.
    let bound = multi_lower_bound(&p, BoundKind::Rational).expect("feasible relaxation");
    assert!((bound - 3.4).abs() < 1e-6, "bound {bound}");
    // The mixed bound sandwiches between the two.
    let mixed = multi_lower_bound(&p, BoundKind::Mixed).expect("feasible relaxation");
    assert!(
        mixed + 1e-6 >= bound && mixed <= 7.0 + 1e-6,
        "mixed {mixed}"
    );
}

#[test]
fn multi_object_shared_link_golden_feasibility() {
    // At most 4 of the 8 requests fit the hub; the rest must cross the
    // shared uplink: bw = 4 keeps the optimum, bw = 3 starves the tree.
    let ok = multi_object_shared_link(4);
    let exact = solve_multi_ilp(&ok).expect("feasible instance");
    exact.validate(&ok, Policy::Multiple).expect("valid");
    assert_eq!(exact.cost(&ok), 7);

    let starved = multi_object_shared_link(3);
    assert!(solve_multi_ilp(&starved).is_none());
    assert_eq!(multi_lower_bound(&starved, BoundKind::Rational), None);
    assert_eq!(multi_lower_bound(&starved, BoundKind::Mixed), None);
}

#[test]
fn lp_guided_rounding_golden_figure1_bandwidth() {
    // (1, 1): one replica, any uplink bound — with bw = 0 the rounding
    // is forced onto s1, with slack links either node works; the cost
    // is the hand-computed optimum 1 in every case.
    for bw in [0u64, 1, 5] {
        let p = figure1_bandwidth(1, 1, bw);
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple), "bw={bw}");
        assert_eq!(placement.cost(&p), 1, "bw={bw}");
    }
    // (2, 1): a dead uplink starves the second request — the rounding
    // reports the infeasibility; any positive bound restores cost 2.
    assert!(lp_guided(&figure1_bandwidth(2, 1, 0)).is_none());
    for bw in [1u64, 3] {
        let p = figure1_bandwidth(2, 1, bw);
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple), "bw={bw}");
        assert_eq!(placement.cost(&p), 2, "bw={bw}");
    }
}

#[test]
fn lp_guided_rounding_golden_bandwidth_bottleneck() {
    // bw >= 4: all four requests flow up — the pruning pass must find
    // the all-at-the-root optimum (cost 10), not the 13 of buying both.
    for bw in [4u64, 10] {
        let p = bandwidth_bottleneck(bw);
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple), "bw={bw}");
        assert_eq!(placement.cost(&p), 10, "bw={bw}");
        // The rounded cost sits inside the rational-bound/exact sandwich.
        let bound = lower_bound(&p, BoundKind::Rational).unwrap();
        assert!(bound <= placement.cost(&p) as f64 + 1e-6, "bw={bw}");
        assert_eq!(
            exact_optimal_cost(&p, Policy::Multiple),
            Some(placement.cost(&p)),
            "bw={bw}"
        );
    }
    // 1 <= bw <= 3: the split is forced, both replicas are bought.
    for bw in [1u64, 2, 3] {
        let p = bandwidth_bottleneck(bw);
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple), "bw={bw}");
        assert_eq!(placement.cost(&p), 13, "bw={bw}");
    }
    // bw = 0: mid alone cannot hold the client — the repair correctly
    // reports infeasibility.
    assert!(lp_guided(&bandwidth_bottleneck(0)).is_none());
}

#[test]
fn lp_guided_multi_golden_coupling() {
    // The rounded multi-object cost lands inside the exact-7 / LP-3.4
    // sandwich — and on this instance exactly on the optimum.
    let p = multi_object_coupling();
    let rounded = lp_guided_multi(&p).expect("feasible");
    rounded.validate(&p, Policy::Multiple).expect("valid");
    let bound = multi_lower_bound(&p, BoundKind::Rational).unwrap();
    assert!((bound - 3.4).abs() < 1e-6);
    let cost = rounded.cost(&p);
    assert!(bound <= cost as f64 + 1e-6);
    assert_eq!(cost, 7, "rounding should reach the exact optimum");

    // Shared uplink: bw = 4 keeps the optimum, bw = 3 starves the tree
    // and the rounding mirrors the relaxation's infeasibility.
    let ok = multi_object_shared_link(4);
    let rounded = lp_guided_multi(&ok).expect("feasible");
    rounded.validate(&ok, Policy::Multiple).expect("valid");
    assert_eq!(rounded.cost(&ok), 7);
    assert!(lp_guided_multi(&multi_object_shared_link(3)).is_none());
}

#[test]
fn mixed_best_matches_the_multiple_optimum_on_the_small_examples() {
    // On these tiny instances MixedBest usually reaches the optimum; at
    // the very least it must stay within the policy hierarchy bounds.
    for p in [figure1(1, 1), figure2(2), figure3(2), figure5(4, 8)] {
        let optimum = optimal_cost(&p, Policy::Multiple).unwrap();
        let placement = Heuristic::MixedBest.run(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert!(placement.cost(&p) >= optimum);
        let closest_optimum = optimal_cost(&p, Policy::Closest);
        if let Some(closest_optimum) = closest_optimum {
            assert!(placement.cost(&p) <= closest_optimum);
        }
    }
}
