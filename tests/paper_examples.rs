//! Integration tests replaying the paper's worked examples (Sections 3
//! and 4) through the public API of the umbrella crate: every claim made
//! about Figures 1–5, 7 and 8 is checked end to end (exact solvers,
//! heuristics and LP bounds together).

use replica_placement::core::bounds::replica_counting_lower_bound;
use replica_placement::core::exact::{optimal_cost, solve_multiple_homogeneous};
use replica_placement::core::ilp::{
    exact_optimal_cost, integral_lower_bound, lower_bound, BoundKind,
};
use replica_placement::prelude::*;
use replica_placement::workloads::paper_examples::*;

type PolicyCosts = (Option<u64>, Option<u64>, Option<u64>);

#[test]
fn figure1_policy_feasibility_matrix() {
    // (clients, requests) -> (Closest, Upwards, Multiple) optimal costs.
    let cases: Vec<((usize, u64), PolicyCosts)> = vec![
        ((1, 1), (Some(1), Some(1), Some(1))),
        ((2, 1), (None, Some(2), Some(2))),
        ((1, 2), (None, None, Some(2))),
    ];
    for ((clients, requests), (closest, upwards, multiple)) in cases {
        let p = figure1(clients, requests);
        assert_eq!(optimal_cost(&p, Policy::Closest), closest);
        assert_eq!(optimal_cost(&p, Policy::Upwards), upwards);
        assert_eq!(optimal_cost(&p, Policy::Multiple), multiple);
        // The ILP agrees with the exhaustive oracle.
        assert_eq!(exact_optimal_cost(&p, Policy::Closest), closest);
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), upwards);
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), multiple);
    }
}

#[test]
fn figure2_upwards_is_much_better_than_closest() {
    for n in [2u64, 3] {
        let p = figure2(n);
        let closest = optimal_cost(&p, Policy::Closest).expect("Closest is feasible here");
        let upwards = optimal_cost(&p, Policy::Upwards).expect("Upwards is feasible here");
        assert_eq!(upwards, 3, "n = {n}");
        assert_eq!(closest, n + 2, "n = {n}");
        // The heuristics never beat the respective optima.
        for heuristic in Heuristic::ALL {
            if let Some(placement) = heuristic.run(&p) {
                assert!(placement.is_valid(&p, heuristic.policy()));
                let optimum = optimal_cost(&p, heuristic.policy()).unwrap();
                assert!(placement.cost(&p) >= optimum, "{heuristic} on n = {n}");
            }
        }
    }
}

#[test]
fn figure3_multiple_approaches_factor_two_over_upwards() {
    for n in [2u64, 3] {
        let p = figure3(n);
        let multiple = optimal_cost(&p, Policy::Multiple).unwrap();
        let upwards = optimal_cost(&p, Policy::Upwards).unwrap();
        assert_eq!(multiple, n + 1);
        assert_eq!(upwards, 2 * n);
        // The polynomial algorithm achieves the Multiple optimum.
        let algorithmic = solve_multiple_homogeneous(&p)
            .into_placement()
            .expect("feasible")
            .num_replicas() as u64;
        assert_eq!(algorithmic, multiple);
    }
}

#[test]
fn figure4_multiple_is_arbitrarily_better_than_upwards_on_heterogeneous_nodes() {
    for k in [5u64, 20] {
        let n = 3;
        let p = figure4(n, k);
        let multiple = optimal_cost(&p, Policy::Multiple).unwrap();
        let upwards = optimal_cost(&p, Policy::Upwards).unwrap();
        assert_eq!(multiple, 2 * n);
        assert!(upwards >= k * n, "k = {k}");
        // The ratio grows linearly in K.
        assert!(upwards as f64 / multiple as f64 >= k as f64 / 2.0);
    }
}

#[test]
fn figure5_no_policy_approaches_the_trivial_bound() {
    let (n, w) = (5u64, 10u64);
    let p = figure5(n, w);
    assert_eq!(replica_counting_lower_bound(&p), Some(2));
    for policy in Policy::ALL {
        assert_eq!(optimal_cost(&p, policy), Some(n + 1), "{policy}");
    }
    // The LP-based bound is also far below the integer optimum here —
    // this is intrinsic to the instance, not a solver artefact.
    let bound = lower_bound(&p, BoundKind::Rational).unwrap();
    assert!(integral_lower_bound(bound) <= n + 1);
}

#[test]
fn figure7_three_partition_gadget_behaves_as_in_theorem_2() {
    // Solvable 3-PARTITION -> Upwards cost m; the Multiple policy always
    // copes as long as the totals match (it may split clients).
    let solvable = figure7(&[5, 4, 3, 5, 4, 3], 12);
    assert_eq!(optimal_cost(&solvable, Policy::Upwards), Some(2));
    assert_eq!(optimal_cost(&solvable, Policy::Multiple), Some(2));

    let unsolvable = figure7(&[7, 7, 7, 1, 1, 1], 12);
    assert_eq!(optimal_cost(&unsolvable, Policy::Upwards), None);
    assert_eq!(optimal_cost(&unsolvable, Policy::Multiple), Some(2));
}

#[test]
fn figure8_two_partition_gadget_behaves_as_in_theorem_3() {
    let solvable = figure8(&[4, 2, 6]); // subset {4, 2} sums to S/2 = 6
    let expected = 4 + 2 + 6 + 1; // S + 1
    assert_eq!(optimal_cost(&solvable, Policy::Closest), Some(expected));
    assert_eq!(optimal_cost(&solvable, Policy::Multiple), Some(expected));

    let unsolvable = figure8(&[1, 1, 10]); // no subset sums to 6
    assert!(optimal_cost(&unsolvable, Policy::Closest).unwrap() > expected);
}

#[test]
fn mixed_best_matches_the_multiple_optimum_on_the_small_examples() {
    // On these tiny instances MixedBest usually reaches the optimum; at
    // the very least it must stay within the policy hierarchy bounds.
    for p in [figure1(1, 1), figure2(2), figure3(2), figure5(4, 8)] {
        let optimum = optimal_cost(&p, Policy::Multiple).unwrap();
        let placement = Heuristic::MixedBest.run(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert!(placement.cost(&p) >= optimum);
        let closest_optimum = optimal_cost(&p, Policy::Closest);
        if let Some(closest_optimum) = closest_optimum {
            assert!(placement.cost(&p) <= closest_optimum);
        }
    }
}
