//! Cross-validation of every solver on randomized small instances:
//! the exhaustive oracle, the exact ILP, the polynomial
//! Multiple/homogeneous algorithm, the heuristics and the LP bounds must
//! all tell a consistent story.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use replica_placement::core::exact::{optimal_cost, solve_multiple_homogeneous};
use replica_placement::core::ilp::{exact_optimal_cost, lower_bound, BoundKind};
use replica_placement::prelude::*;
use replica_placement::workloads::{generate_problem, generate_tree};

/// Draws a small random instance (at most ~8 internal nodes so the
/// exhaustive oracle stays fast).
fn small_instance(seed: u64, homogeneous: bool) -> ProblemInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_nodes = rng.gen_range(2..=7);
    let num_clients = rng.gen_range(2..=8);
    let tree = generate_tree(
        &TreeGenConfig {
            num_nodes,
            num_clients,
            shape: TreeShape::RandomAttachment,
        },
        seed,
    );
    let platform = if homogeneous {
        PlatformKind::Homogeneous {
            capacity: rng.gen_range(3..=12),
        }
    } else {
        PlatformKind::HeterogeneousUniform { min: 2, max: 12 }
    };
    let lambda = rng.gen_range(0.2..=1.1);
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0x5555)
}

#[test]
fn ilp_and_exhaustive_agree_on_every_policy() {
    for seed in 0..25u64 {
        let p = small_instance(seed, seed % 2 == 0);
        for policy in Policy::ALL {
            let oracle = optimal_cost(&p, policy);
            let ilp = exact_optimal_cost(&p, policy);
            assert_eq!(oracle, ilp, "seed {seed}, policy {policy}");
        }
    }
}

#[test]
fn policy_hierarchy_holds_on_random_instances() {
    for seed in 0..40u64 {
        let p = small_instance(seed, seed % 3 == 0);
        let closest = optimal_cost(&p, Policy::Closest);
        let upwards = optimal_cost(&p, Policy::Upwards);
        let multiple = optimal_cost(&p, Policy::Multiple);
        // Feasibility is monotone along the hierarchy.
        if closest.is_some() {
            assert!(upwards.is_some(), "seed {seed}");
        }
        if upwards.is_some() {
            assert!(multiple.is_some(), "seed {seed}");
        }
        // Costs are monotone along the hierarchy.
        if let (Some(c), Some(u)) = (closest, upwards) {
            assert!(u <= c, "seed {seed}");
        }
        if let (Some(u), Some(m)) = (upwards, multiple) {
            assert!(m <= u, "seed {seed}");
        }
    }
}

#[test]
fn polynomial_multiple_algorithm_is_optimal_on_homogeneous_instances() {
    for seed in 100..140u64 {
        let p = small_instance(seed, true);
        let oracle = optimal_cost(&p, Policy::Multiple);
        let algorithmic = solve_multiple_homogeneous(&p)
            .into_placement()
            .map(|placement| {
                assert!(placement.is_valid(&p, Policy::Multiple), "seed {seed}");
                placement.cost(&p)
            });
        assert_eq!(oracle, algorithmic, "seed {seed}");
    }
}

#[test]
fn heuristics_are_valid_and_never_beat_the_optimum() {
    for seed in 200..230u64 {
        let p = small_instance(seed, seed % 2 == 0);
        for heuristic in Heuristic::ALL {
            if let Some(placement) = heuristic.run(&p) {
                assert!(
                    placement.is_valid(&p, heuristic.policy()),
                    "seed {seed}, {heuristic}"
                );
                let optimum = optimal_cost(&p, heuristic.policy())
                    .expect("a heuristic solution implies feasibility");
                assert!(
                    placement.cost(&p) >= optimum,
                    "seed {seed}: {heuristic} beat the optimum"
                );
            }
        }
    }
}

#[test]
fn lp_bounds_sandwich_the_multiple_optimum() {
    for seed in 300..330u64 {
        let p = small_instance(seed, seed % 2 == 1);
        let optimum = optimal_cost(&p, Policy::Multiple);
        let rational = lower_bound(&p, BoundKind::Rational);
        let mixed = lower_bound(&p, BoundKind::Mixed);
        match optimum {
            None => {
                // The Multiple relaxation must also be infeasible.
                assert!(rational.is_none(), "seed {seed}");
                assert!(mixed.is_none(), "seed {seed}");
            }
            Some(optimum) => {
                let rational = rational.expect("feasible instance has a rational bound");
                let mixed = mixed.expect("feasible instance has a mixed bound");
                assert!(rational <= optimum as f64 + 1e-6, "seed {seed}");
                assert!(mixed <= optimum as f64 + 1e-6, "seed {seed}");
                assert!(mixed + 1e-6 >= rational, "seed {seed}");
            }
        }
    }
}

#[test]
fn mg_finds_a_solution_exactly_when_multiple_is_feasible() {
    for seed in 400..460u64 {
        let p = small_instance(seed, seed % 2 == 0);
        let feasible = optimal_cost(&p, Policy::Multiple).is_some();
        let greedy = Heuristic::Mg.run(&p).is_some();
        assert_eq!(feasible, greedy, "seed {seed}");
    }
}
