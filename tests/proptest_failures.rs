//! Property-based fault injection: under arbitrary failure traces on
//! randomized instances, the repair pipeline must always return a
//! machine-checkable outcome — a placement fully valid over the
//! surviving platform, or a degraded report whose served set is
//! genuinely servable. Never an invalid answer, never a panic.

use proptest::prelude::*;

use replica_placement::core::{
    apply_failures, inject_and_repair, repair_after_failure, FailureEvent, RepairOutcome,
};
use replica_placement::prelude::*;
use replica_placement::workloads::failures::failure_trace;
use replica_placement::workloads::{generate_problem, generate_tree};

/// A random instance from one seed: tree shape, platform family and
/// load factor all derive from it (same construction as the
/// cross-validation suite, sized so a case stays in microseconds).
fn instance_from_seed(seed: u64) -> ProblemInstance {
    let num_nodes = 2 + (seed % 6) as usize;
    let num_clients = 2 + ((seed >> 8) % 7) as usize;
    let tree = generate_tree(
        &TreeGenConfig {
            num_nodes,
            num_clients,
            shape: TreeShape::RandomAttachment,
        },
        seed,
    );
    let platform = if seed.is_multiple_of(2) {
        PlatformKind::Homogeneous {
            capacity: 3 + (seed >> 16) % 10,
        }
    } else {
        PlatformKind::HeterogeneousUniform { min: 2, max: 12 }
    };
    let lambda = 0.2 + ((seed >> 24) % 90) as f64 / 100.0;
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0x5555)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: for every policy whose heuristics can
    /// place the healthy instance, injecting an arbitrary trace of up
    /// to four failures yields an outcome that passes its machine
    /// check — full placements validate as-is, degraded reports have a
    /// servable served-set and consistent bookkeeping.
    #[test]
    fn repair_outcomes_always_verify(
        instance_seed in 0u64..1_000_000,
        trace_seed in 0u64..1_000_000,
        trace_len in 1usize..=4,
    ) {
        let problem = instance_from_seed(instance_seed);
        let events = failure_trace(&problem, trace_len, trace_seed);
        for heuristic in Heuristic::ALL {
            let Some(placement) = heuristic.run(&problem) else {
                continue;
            };
            let policy = heuristic.policy();
            let (platform, outcome) =
                inject_and_repair(&problem, &placement, policy, &events);
            prop_assert!(
                outcome.verify(&platform, policy),
                "{heuristic:?} under {events:?}"
            );
            let fraction = outcome.served_fraction();
            prop_assert!((0.0..=1.0).contains(&fraction));
            if outcome.is_full() {
                prop_assert_eq!(fraction, 1.0);
            }
        }
    }

    /// An empty failure trace is a no-op: the pre-failure placement is
    /// still valid, so the repair must restore full service (and the
    /// surgical path must not have degraded anything).
    #[test]
    fn no_failures_always_repairs_fully(instance_seed in 0u64..1_000_000) {
        let problem = instance_from_seed(instance_seed);
        let platform = apply_failures(&problem, &[]);
        for heuristic in Heuristic::ALL {
            let Some(placement) = heuristic.run(&problem) else {
                continue;
            };
            let policy = heuristic.policy();
            let outcome = repair_after_failure(&platform, &placement, policy);
            prop_assert!(outcome.is_full(), "{heuristic:?}");
            prop_assert!(outcome.verify(&platform, policy), "{heuristic:?}");
        }
    }

    /// Killing every server leaves nothing servable: the outcome must
    /// degrade to the (vacuously valid) empty report rather than fail.
    #[test]
    fn total_loss_degrades_to_an_empty_verified_report(
        instance_seed in 0u64..1_000_000,
    ) {
        let problem = instance_from_seed(instance_seed);
        let events = [FailureEvent::SubtreeFailure(problem.tree().root())];
        for heuristic in Heuristic::ALL {
            let Some(placement) = heuristic.run(&problem) else {
                continue;
            };
            let policy = heuristic.policy();
            let (platform, outcome) =
                inject_and_repair(&problem, &placement, policy, &events);
            prop_assert!(outcome.verify(&platform, policy), "{heuristic:?}");
            match outcome {
                RepairOutcome::Degraded(report) => {
                    prop_assert_eq!(report.served_requests, 0, "{:?}", heuristic);
                    prop_assert_eq!(report.placement.num_replicas(), 0, "{:?}", heuristic);
                }
                RepairOutcome::Full(_) => {
                    // Only possible when no client has any requests.
                    let total: u64 = problem
                        .tree()
                        .client_ids()
                        .map(|c| problem.requests(c))
                        .sum();
                    prop_assert_eq!(total, 0, "{:?}", heuristic);
                }
            }
        }
    }
}
