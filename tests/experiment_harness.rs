//! End-to-end checks of the experiment harness: a reduced sweep must
//! reproduce the qualitative shape of the paper's Figures 9–12 — the
//! policy hierarchy in both success rate and relative cost, the collapse
//! of the Closest policy under load, and MixedBest tracking the LP
//! bound.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use replica_placement::core::Heuristic;
use replica_placement::experiments::figures::{check_cost_shape, check_success_shape};
use replica_placement::experiments::runner::{run_sweep, ExperimentConfig};
use replica_placement::experiments::{relative_cost_table, success_table};
use replica_placement::workloads::PlatformKind;

/// A reduced but non-trivial sweep: 3 λ values spanning light to heavy
/// load, 10 trees each, sizes 15–45.
fn reduced_config(platform: PlatformKind) -> ExperimentConfig {
    ExperimentConfig {
        lambdas: vec![0.2, 0.5, 0.8],
        trees_per_lambda: 10,
        size_range: (15, 45),
        platform,
        ..ExperimentConfig::smoke_test()
    }
}

#[test]
fn homogeneous_sweep_reproduces_the_figure_9_and_10_shape() {
    let config = reduced_config(PlatformKind::default_homogeneous());
    let results = run_sweep(&config);

    let success_violations = check_success_shape(&results);
    assert!(
        success_violations.is_empty(),
        "success-shape violations: {success_violations:?}"
    );
    let cost_violations = check_cost_shape(&results);
    assert!(
        cost_violations.is_empty(),
        "cost-shape violations: {cost_violations:?}"
    );

    // The policy hierarchy in success rates: the best Multiple heuristic
    // (MG) succeeds at least as often as the best Closest heuristic, at
    // every λ.
    for batch in &results.batches {
        let best_closest = [Heuristic::Ctda, Heuristic::Ctdlf, Heuristic::Cbu]
            .iter()
            .map(|&h| batch.success_rate(h))
            .fold(0.0f64, f64::max);
        assert!(
            batch.success_rate(Heuristic::Mg) >= best_closest - 1e-9,
            "λ = {}",
            batch.lambda
        );
    }

    // At heavy load the Closest policy must do strictly worse than MG on
    // success rate (the Figure 9 collapse), unless everything failed.
    let heavy = results.batches.last().unwrap();
    if heavy.lp_success_rate() > 0.0 {
        assert!(heavy.success_rate(Heuristic::Cbu) <= heavy.success_rate(Heuristic::Mg));
    }

    // Tables render with one row per λ.
    assert_eq!(success_table(&results).num_rows(), config.lambdas.len());
    assert_eq!(
        relative_cost_table(&results).num_rows(),
        config.lambdas.len()
    );
}

#[test]
fn heterogeneous_sweep_reproduces_the_figure_11_and_12_shape() {
    let config = reduced_config(PlatformKind::default_heterogeneous());
    let results = run_sweep(&config);

    assert!(check_success_shape(&results).is_empty());
    assert!(check_cost_shape(&results).is_empty());

    // MixedBest's relative cost must stay reasonable on solvable batches
    // (the paper reports >= 0.85 at full size; we allow slack for the
    // reduced sweep but it must remain clearly above the weakest
    // heuristic).
    for batch in &results.batches {
        if batch.lp_success_rate() == 0.0 {
            continue;
        }
        let mb = batch.relative_cost(Heuristic::MixedBest);
        assert!(
            mb > 0.5,
            "λ = {}: MixedBest relative cost {mb}",
            batch.lambda
        );
        for h in Heuristic::BASE {
            assert!(mb + 1e-9 >= batch.relative_cost(h), "λ = {}", batch.lambda);
        }
    }
}

#[test]
fn light_load_is_almost_always_solvable() {
    // At λ = 0.2 nearly every random tree admits a solution, and MG
    // must find one for each solvable tree.
    let config = ExperimentConfig {
        lambdas: vec![0.2],
        trees_per_lambda: 12,
        ..reduced_config(PlatformKind::default_homogeneous())
    };
    let results = run_sweep(&config);
    let batch = &results.batches[0];
    assert!(batch.lp_success_rate() > 0.5);
    assert!((batch.success_rate(Heuristic::Mg) - batch.lp_success_rate()).abs() < 1e-9);
}
