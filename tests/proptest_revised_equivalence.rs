//! Differential property tests pinning the **revised simplex** to the
//! **dense tableau** oracle.
//!
//! The two LP engines are independent implementations of the same
//! mathematics: the dense tableau materialises upper bounds as rows and
//! eliminates the full matrix per pivot, while the revised engine keeps
//! a sparse Markowitz-LU-factorised basis with Forrest–Tomlin updates
//! and implicit bounds. On every random bounded LP they must agree on
//! feasibility, boundedness and the optimal objective (within
//! tolerance); on every random MILP the warm-started revised
//! branch-and-bound must agree with the cold dense search. Further
//! properties pin the solver's internal degrees of freedom to the same
//! answers: every pricing rule (devex / Dantzig / Bland) reaches the
//! same objective, presolve+postsolve round-trips against the
//! unreduced solve, and warm sibling re-solves (same matrix, shifted
//! objective/rhs) match cold solves.
//!
//! (Values are generated as small unsigned integers and decoded into
//! signed coefficients/bounds — the vendored proptest stand-in only
//! implements unsigned range strategies.)

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use proptest::prelude::*;

use replica_placement::lp::{
    solve_lp, solve_lp_revised, solve_lp_revised_reusing, solve_lp_revised_with, solve_milp_with,
    BranchBoundOptions, Cmp, DualPricing, LinExpr, LpEngine, Model, Pricing, RevisedWorkspace,
    Sense, SimplexOptions, Status,
};

/// One encoded variable: (bounded?, lower, range-above-lower, packed).
/// `packed` carries the objective coefficient (−5..=5) and the integer
/// marker: `obj = packed % 11 − 5`, `integer = (packed / 11) % 2 == 1`.
type RawVar = (u32, u32, u32, u32);
/// One encoded constraint: (coefficients 0..=6 → −3..=3, cmp, rhs 0..=18 → −6..=12).
type RawCon = (Vec<u32>, u32, u32);

fn model_strategy(
    max_vars: usize,
    max_cons: usize,
) -> impl Strategy<Value = (Vec<RawVar>, Vec<RawCon>, u32)> {
    (1..=max_vars, 0..=max_cons).prop_flat_map(move |(n, m)| {
        let var = (0u32..=2, 0u32..=3, 1u32..=6, 0u32..=21);
        let con = (collection::vec(0u32..=6, n), 0u32..=2, 0u32..=18);
        (
            collection::vec(var, n),
            collection::vec(con, m),
            0u32..=1, // maximise?
        )
    })
}

/// Decodes a generated spec into a [`Model`]. When `integers` is false
/// every variable stays continuous (pure LP differential testing); when
/// true the packed integer markers apply (MILP differential testing).
fn build_model(spec: &(Vec<RawVar>, Vec<RawCon>, u32), integers: bool) -> Model {
    let (vars, cons, maximise) = spec;
    let mut model = Model::new(if *maximise == 1 {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let ids: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &(bounded, lower, range, packed))| {
            let lower = f64::from(lower);
            let upper = if bounded == 0 {
                None
            } else {
                Some(lower + f64::from(range))
            };
            let objective = f64::from(packed % 11) - 5.0;
            let integer = integers && (packed / 11) % 2 == 1;
            if integer {
                // Integer variables need a finite range so the search
                // tree stays small; fall back to [lower, lower+range].
                let upper = upper.unwrap_or(lower + f64::from(range));
                model.add_int_var(format!("x{i}"), lower, Some(upper), objective)
            } else {
                model.add_var(format!("x{i}"), lower, upper, objective)
            }
        })
        .collect();
    for (c, (coeffs, cmp, rhs)) in cons.iter().enumerate() {
        let mut expr = LinExpr::new();
        for (&var, &coeff) in ids.iter().zip(coeffs) {
            let coeff = f64::from(coeff) - 3.0;
            if coeff != 0.0 {
                expr.add_term(coeff, var);
            }
        }
        if expr.is_empty() {
            continue;
        }
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let rhs = f64::from(*rhs) - 6.0;
        model.add_constraint(format!("c{c}"), expr, cmp, rhs);
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Same status and, when optimal, the same objective within 1e-6 —
    /// and both engines' points must satisfy the model.
    #[test]
    fn revised_simplex_matches_the_dense_tableau(spec in model_strategy(6, 5)) {
        let model = build_model(&spec, false);
        let dense = solve_lp(&model);
        let revised = solve_lp_revised(&model);
        // Both solvers are exact on these tame instances; an iteration
        // limit would indicate a bug, not hard numerics.
        prop_assert_ne!(dense.status, Status::IterationLimit);
        prop_assert_ne!(revised.status, Status::IterationLimit);
        prop_assert_eq!(dense.status, revised.status);
        if dense.status == Status::Optimal {
            prop_assert!(
                (dense.objective - revised.objective).abs() < 1e-6,
                "dense {} vs revised {} on\n{}",
                dense.objective,
                revised.objective,
                model
            );
            prop_assert!(
                model.is_feasible(&revised.values, 1e-6),
                "revised returned an infeasible point for\n{}",
                model
            );
            prop_assert!(
                model.is_feasible(&dense.values, 1e-6),
                "dense returned an infeasible point for\n{}",
                model
            );
        }
    }

    /// Partial, devex, Dantzig and Bland pricing are different *routes*
    /// to the same optimum: identical status and, when optimal,
    /// identical objective (each point feasible for the model).
    #[test]
    fn pricing_rules_agree_on_the_objective(spec in model_strategy(6, 5)) {
        let model = build_model(&spec, false);
        let solve = |pricing| {
            solve_lp_revised_with(&model, &SimplexOptions { pricing, ..SimplexOptions::default() })
        };
        let partial = solve(Pricing::Partial);
        let devex = solve(Pricing::Devex);
        let dantzig = solve(Pricing::Dantzig);
        let bland = solve(Pricing::Bland);
        prop_assert_eq!(partial.status, devex.status);
        prop_assert_eq!(partial.status, dantzig.status);
        prop_assert_eq!(partial.status, bland.status);
        if partial.status == Status::Optimal {
            prop_assert!(
                (partial.objective - devex.objective).abs() < 1e-6,
                "partial {} vs devex {} on\n{}", partial.objective, devex.objective, model
            );
            prop_assert!(
                (partial.objective - dantzig.objective).abs() < 1e-6,
                "partial {} vs dantzig {} on\n{}", partial.objective, dantzig.objective, model
            );
            prop_assert!(
                (partial.objective - bland.objective).abs() < 1e-6,
                "partial {} vs bland {} on\n{}", partial.objective, bland.objective, model
            );
            prop_assert!(model.is_feasible(&partial.values, 1e-6));
            prop_assert!(model.is_feasible(&devex.values, 1e-6));
        }
    }

    /// The two dual pricing rules (devex row weights vs most-violated
    /// row) are different routes through the dual simplex to the same
    /// optimum — and both must agree with the dense tableau oracle.
    #[test]
    fn dual_pricing_rules_agree_on_the_objective(spec in model_strategy(6, 5)) {
        let model = build_model(&spec, false);
        let solve = |dual_pricing| {
            solve_lp_revised_with(
                &model,
                &SimplexOptions { dual_pricing, ..SimplexOptions::default() },
            )
        };
        let devex = solve(DualPricing::Devex);
        let most_violated = solve(DualPricing::MostViolated);
        let dense = solve_lp(&model);
        prop_assert_eq!(devex.status, most_violated.status);
        prop_assert_eq!(devex.status, dense.status);
        if devex.status == Status::Optimal {
            prop_assert!(
                (devex.objective - most_violated.objective).abs() < 1e-6,
                "dual devex {} vs most-violated {} on\n{}",
                devex.objective, most_violated.objective, model
            );
            prop_assert!(
                (devex.objective - dense.objective).abs() < 1e-6,
                "dual devex {} vs dense {} on\n{}", devex.objective, dense.objective, model
            );
            prop_assert!(model.is_feasible(&devex.values, 1e-6));
            prop_assert!(model.is_feasible(&most_violated.values, 1e-6));
        }
    }

    /// Presolve round-trip: solving the reduced problem and postsolving
    /// must give the same status and objective as solving the full
    /// problem, and the postsolved point must satisfy the *original*
    /// model (eliminated rows and fixed columns included).
    #[test]
    fn presolve_round_trips_against_the_unreduced_solve(spec in model_strategy(6, 5)) {
        let model = build_model(&spec, false);
        let with = solve_lp_revised_with(&model, &SimplexOptions::default());
        let without = solve_lp_revised_with(
            &model,
            &SimplexOptions { presolve: false, ..SimplexOptions::default() },
        );
        prop_assert_eq!(with.status, without.status, "presolve changed the status on\n{}", model);
        if with.status == Status::Optimal {
            prop_assert!(
                (with.objective - without.objective).abs() < 1e-6,
                "presolved {} vs unreduced {} on\n{}", with.objective, without.objective, model
            );
            prop_assert!(
                model.is_feasible(&with.values, 1e-6),
                "postsolved point violates the original model\n{}", model
            );
        }
    }

    /// Sibling warm starts: re-solving models that share a constraint
    /// matrix but differ in objective, bounds and right-hand sides
    /// through one workspace must match fresh cold solves every time.
    #[test]
    fn warm_sibling_solves_match_cold_solves(spec in model_strategy(5, 4), shifts in collection::vec((0u32..=6, 0u32..=12), 3)) {
        let base = build_model(&spec, false);
        // The warm path's dual cleanup must match cold solves under
        // both dual rules — the new devex row weights and the
        // historical most-violated-row rule.
        for dual_pricing in [DualPricing::Devex, DualPricing::MostViolated] {
            let mut ws = RevisedWorkspace::new();
            let options = SimplexOptions { dual_pricing, ..SimplexOptions::default() };
            solve_lp_revised_reusing(&base, &options, &mut ws);
            for &(obj_shift, rhs_shift) in &shifts {
                let mut sibling = build_model(&spec, false);
                // Shift every objective coefficient and right-hand side;
                // the matrix (and thus the warm path's validity check)
                // stays identical.
                let delta_obj = f64::from(obj_shift) - 3.0;
                let delta_rhs = f64::from(rhs_shift) - 6.0;
                let vars: Vec<_> = sibling.var_ids().collect();
                for id in vars {
                    let objective = sibling.variable(id).objective + delta_obj;
                    sibling.set_objective(id, objective);
                }
                let cons: Vec<_> = sibling.constraint_ids().collect();
                for id in cons {
                    let rhs = sibling.constraint(id).rhs + delta_rhs;
                    sibling.set_rhs(id, rhs);
                }
                let warm = solve_lp_revised_reusing(&sibling, &options, &mut ws);
                let cold = solve_lp_revised(&sibling);
                prop_assert_eq!(warm.status, cold.status, "dual rule {:?} on\n{}", dual_pricing, sibling);
                if warm.status == Status::Optimal {
                    prop_assert!(
                        (warm.objective - cold.objective).abs() < 1e-6,
                        "warm {} vs cold {} (dual rule {:?}) on\n{}",
                        warm.objective, cold.objective, dual_pricing, sibling
                    );
                    prop_assert!(sibling.is_feasible(&warm.values, 1e-6));
                }
            }
        }
    }

    /// Warm-started revised branch-and-bound ≡ cold dense branch-and-bound:
    /// same status, same optimal objective, same proven bound.
    #[test]
    fn warm_revised_bb_matches_cold_dense_bb(spec in model_strategy(5, 4)) {
        let model = build_model(&spec, true);
        let dense = solve_milp_with(&model, &BranchBoundOptions {
            engine: LpEngine::DenseTableau,
            ..BranchBoundOptions::default()
        });
        let revised = solve_milp_with(&model, &BranchBoundOptions {
            engine: LpEngine::Revised,
            ..BranchBoundOptions::default()
        });
        // Skip the rare instance either search could not finish.
        if dense.status != Status::NodeLimit && revised.status != Status::NodeLimit {
            prop_assert_eq!(dense.status, revised.status);
            match (dense.objective(), revised.objective()) {
                (Some(a), Some(b)) => {
                    prop_assert!((a - b).abs() < 1e-6, "incumbents differ: {} vs {} on\n{}", a, b, model);
                    let incumbent = revised.incumbent.as_ref().unwrap();
                    prop_assert!(model.is_feasible(&incumbent.values, 1e-6));
                }
                (None, None) => {}
                other => prop_assert!(false, "incumbent presence differs: {:?}", other),
            }
            match (dense.bound, revised.bound) {
                (Some(a), Some(b)) => prop_assert!(
                    (a - b).abs() < 1e-6,
                    "bounds differ: {} vs {} on\n{}", a, b, model
                ),
                (None, None) => {}
                other => prop_assert!(false, "bound presence differs: {:?}", other),
            }
        }
    }
}

/// Degenerate-instance regression: a cover LP built almost entirely
/// from boxed columns with identical costs, identical bounds and tied
/// right-hand sides — every dual pivot sees walls of equal ratios and
/// equal violations, and most steps are degenerate. The bound-flipping
/// dual ratio test must still terminate (no cycling) under a hard
/// iteration cap, and on the optimum it must agree with the dense
/// tableau oracle.
#[test]
fn degenerate_boxed_cover_does_not_cycle() {
    let rows = 60usize;
    let cols = 90usize;
    let mut model = Model::new(Sense::Minimize);
    // All-boxed, all-identical columns: cost 1, bounds [0, 1].
    let vars: Vec<_> = (0..cols)
        .map(|j| model.add_var(format!("x{j}"), 0.0, Some(1.0), 1.0))
        .collect();
    // Overlapping unit-coefficient cover rows with a tied rhs: row i
    // covers five consecutive columns (wrapping), "≥ 2" each — the
    // optimal basis is massively degenerate and every ratio ties.
    for i in 0..rows {
        let mut expr = LinExpr::new();
        for k in 0..5 {
            expr.add_term(1.0, vars[(i * 3 + k) % cols]);
        }
        model.add_constraint(format!("c{i}"), expr, Cmp::Ge, 2.0);
    }
    // A cap far below the default: cycling (or even mild stalling)
    // blows straight through it, termination stays well under it.
    let options = SimplexOptions {
        max_iterations: Some(2_000),
        ..SimplexOptions::default()
    };
    let revised = solve_lp_revised_with(&model, &options);
    assert_eq!(
        revised.status,
        Status::Optimal,
        "bound-flipping dual ratio test failed to terminate on the degenerate cover"
    );
    let dense = solve_lp(&model);
    assert_eq!(dense.status, Status::Optimal);
    assert!(
        (revised.objective - dense.objective).abs() < 1e-6,
        "revised {} vs dense {}",
        revised.objective,
        dense.objective
    );
    assert!(model.is_feasible(&revised.values, 1e-6));
}
