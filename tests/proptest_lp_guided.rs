//! Property tests for the LP-guided rounding & repair subsystem.
//!
//! Three contracts, on random bandwidth-constrained and multi-object
//! instances (the same generator family as
//! `proptest_scenario_equivalence.rs`):
//!
//! * **Feasibility by construction** — every placement the rounding
//!   returns validates end to end: capacity, per-link bandwidth and (in
//!   the multi-object case) the shared capacities and shared links.
//! * **The bound sandwich** — a rounded cost never undercuts the
//!   rational LP bound, and on the small instances the generators
//!   produce (s ≤ 12) never undercuts the exact ILP optimum either;
//!   conversely the rounding only fails when it has to (an infeasible
//!   relaxation), never producing placements out of thin air.
//! * **Repair safety** — the [`BandwidthRepair`] retrofit never returns
//!   an invalid placement for any of the eight classic heuristics, and
//!   is a no-op on instances without bandwidth bounds.
//!
//! (Values are generated as small unsigned integers — the vendored
//! proptest stand-in only implements unsigned range strategies.)

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use proptest::prelude::*;

use replica_placement::core::heuristics::lp_guided::{lp_guided, lp_guided_multi, BandwidthRepair};
use replica_placement::core::ilp::{exact_optimal_cost, lower_bound, multi_lower_bound, BoundKind};
use replica_placement::core::multi::{solve_multi_ilp, MultiObjectProblem};
use replica_placement::core::{Heuristic, Policy, ProblemInstance};
use replica_placement::tree::{TreeBuilder, TreeNetwork};

/// Encoded tree + platform: node parent choices, per-client
/// (parent choice, requests), per-node capacities, per-node uplink
/// bandwidth code (`>= 10` → unbounded).
type ScenarioSpec = (Vec<u32>, Vec<(u32, u32)>, Vec<u32>, Vec<u32>);

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(nodes, clients)| {
        (
            collection::vec(0u32..=10, nodes - 1),
            collection::vec((0u32..=10, 0u32..=5), clients),
            collection::vec(1u32..=8, nodes),
            collection::vec(0u32..=15, nodes),
        )
    })
}

fn build_tree(parents: &[u32], clients: &[(u32, u32)]) -> TreeNetwork {
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    let mut nodes = vec![root];
    for (i, &choice) in parents.iter().enumerate() {
        let parent = nodes[(choice as usize) % (i + 1)];
        nodes.push(b.add_node(parent));
    }
    for &(choice, _) in clients {
        b.add_client(nodes[(choice as usize) % nodes.len()]);
    }
    b.build().expect("generated trees are well-formed")
}

fn build_bandwidth_problem(spec: &ScenarioSpec) -> ProblemInstance {
    let (parents, clients, platform, bw_codes) = spec;
    let tree = build_tree(parents, clients);
    let requests: Vec<u64> = clients.iter().map(|&(_, r)| u64::from(r)).collect();
    let capacities: Vec<u64> = platform.iter().map(|&cap| u64::from(cap)).collect();
    let node_links: Vec<Option<u64>> = bw_codes
        .iter()
        .enumerate()
        .map(|(index, &code)| (index > 0 && code < 10).then_some(u64::from(code)))
        .collect();
    ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities.clone())
        .storage_costs(capacities)
        .node_link_bandwidths(node_links)
        .build()
}

/// Encoded multi-object extension: per-client per-object requests.
type MultiSpec = (ScenarioSpec, Vec<Vec<u32>>);

fn multi_strategy() -> impl Strategy<Value = MultiSpec> {
    (scenario_strategy(), 1usize..=3).prop_flat_map(|(spec, objects)| {
        let clients = spec.1.len();
        (
            Just(spec),
            collection::vec(collection::vec(0u32..=4, clients), objects),
        )
    })
}

fn build_multi_problem(spec: &MultiSpec) -> MultiObjectProblem {
    let ((parents, clients, platform, bw_codes), object_requests) = spec;
    let tree = build_tree(parents, clients);
    let capacities: Vec<u64> = platform.iter().map(|&cap| u64::from(cap) * 2).collect();
    let requests: Vec<Vec<u64>> = object_requests
        .iter()
        .map(|object| object.iter().map(|&r| u64::from(r)).collect())
        .collect();
    let storage_costs: Vec<Vec<u64>> = (0..requests.len())
        .map(|k| {
            capacities
                .iter()
                .enumerate()
                .map(|(j, &w)| w + ((j + k) % 3) as u64)
                .collect()
        })
        .collect();
    let node_links: Vec<Option<u64>> = bw_codes
        .iter()
        .enumerate()
        .map(|(index, &code)| (index > 0 && code < 10).then_some(u64::from(code)))
        .collect();
    let num_clients = clients.len();
    MultiObjectProblem::new(tree, requests, capacities, storage_costs)
        .with_link_bandwidths(vec![None; num_clients], node_links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Rounded placements are always feasible (capacity + bandwidth)
    /// and never undercut the rational bound; a rounding without a
    /// feasible relaxation never happens.
    #[test]
    fn lp_guided_placements_are_feasible_and_respect_the_bound(spec in scenario_strategy()) {
        let problem = build_bandwidth_problem(&spec);
        let bound = lower_bound(&problem, BoundKind::Rational);
        match lp_guided(&problem) {
            Some(placement) => {
                if let Err(violations) = placement.validate(&problem, Policy::Multiple) {
                    prop_assert!(false, "invalid rounded placement: {violations}");
                }
                let bound = bound.expect("a rounded placement implies a feasible relaxation");
                prop_assert!(
                    placement.cost(&problem) as f64 + 1e-6 >= bound,
                    "cost {} undercut the bound {bound}",
                    placement.cost(&problem)
                );
            }
            None => {
                // A failed rounding is only *required* on an infeasible
                // relaxation; on a feasible one it is a (permitted)
                // heuristic miss, so there is nothing to assert here.
            }
        }
    }

    /// The BandwidthRepair retrofit never returns an invalid placement
    /// for any classic heuristic, and is transparent without bounds.
    #[test]
    fn bandwidth_repair_never_returns_invalid_placements(spec in scenario_strategy()) {
        let problem = build_bandwidth_problem(&spec);
        for heuristic in Heuristic::BASE {
            if let Some(placement) = BandwidthRepair(heuristic).run(&problem) {
                if let Err(violations) = placement.validate(&problem, heuristic.policy()) {
                    prop_assert!(false, "{heuristic}: invalid repaired placement: {violations}");
                }
            }
        }
    }

    /// Multi-object roundings validate against the shared capacities
    /// and shared links, and respect the multi-object rational bound.
    #[test]
    fn lp_guided_multi_placements_are_feasible_and_respect_the_bound(spec in multi_strategy()) {
        let problem = build_multi_problem(&spec);
        if let Some(placement) = lp_guided_multi(&problem) {
            if let Err(error) = placement.validate(&problem, Policy::Multiple) {
                prop_assert!(false, "invalid rounded multi placement: {error}");
            }
            let bound = multi_lower_bound(&problem, BoundKind::Rational)
                .expect("a rounded placement implies a feasible relaxation");
            prop_assert!(
                placement.cost(&problem) as f64 + 1e-6 >= bound,
                "cost {} undercut the bound {bound}",
                placement.cost(&problem)
            );
        }
    }
}

proptest! {
    // Exact ILP searches are costlier; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On the small (s ≤ 12) instances the generators produce, the
    /// rounded cost sits in the bound/exact sandwich:
    /// `rational ≤ exact ≤ rounded`, and the rounding succeeds at least
    /// whenever the exact search does not prove infeasibility... it may
    /// fail on feasible instances (it is a heuristic), but must never
    /// succeed on infeasible ones.
    #[test]
    fn rounded_costs_sandwich_against_the_exact_optimum(spec in scenario_strategy()) {
        let problem = build_bandwidth_problem(&spec);
        let exact = exact_optimal_cost(&problem, Policy::Multiple);
        if let Some(placement) = lp_guided(&problem) {
            let exact = exact.expect("a rounded placement implies exact feasibility");
            prop_assert!(
                placement.cost(&problem) >= exact,
                "rounded {} below the exact optimum {exact}",
                placement.cost(&problem)
            );
            let bound = lower_bound(&problem, BoundKind::Rational).unwrap();
            prop_assert!(bound <= exact as f64 + 1e-6);
        }
    }

    /// The multi-object sandwich against the exact multi-object ILP.
    #[test]
    fn multi_rounded_costs_sandwich_against_the_exact_optimum(spec in multi_strategy()) {
        let problem = build_multi_problem(&spec);
        if let Some(placement) = lp_guided_multi(&problem) {
            if let Some(exact) = solve_multi_ilp(&problem) {
                prop_assert!(
                    placement.cost(&problem) >= exact.cost(&problem),
                    "rounded {} below the exact optimum {}",
                    placement.cost(&problem),
                    exact.cost(&problem)
                );
            }
        }
    }
}
