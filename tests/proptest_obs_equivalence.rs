//! Differential property tests pinning **instrumented ≡ uninstrumented**:
//! running the exact same solve, heuristic sweep, LP-guided rounding or
//! failure repair under `ObsMode::Full` must be *bit-identical* to
//! running it under `ObsMode::Off`.
//!
//! This is the telemetry layer's core contract (see `rp-obs`): every
//! instrumentation site is read-only with respect to the computation —
//! counters, spans and trace events observe the pivot path, they never
//! steer it. A drift here would mean a site accidentally perturbs
//! iteration order, RNG consumption or floating-point evaluation, so
//! the comparisons are exact (`to_bits` on floats, full equality on
//! placements and iteration counts) rather than tolerance-based.
//!
//! The observability mode is process-global state, so every test in
//! this binary serialises on one mutex and restores `Off` before
//! releasing it.

use std::sync::Mutex;

use proptest::prelude::*;

use replica_placement::core::heuristics::lp_guided::lp_guided_with;
use replica_placement::core::ilp::IlpOptions;
use replica_placement::core::{inject_and_repair, Heuristic, Policy};
use replica_placement::experiments::runner::{run_single_trial, ExperimentConfig};
use replica_placement::lp::{
    solve_lp_revised_reusing, Cmp, LinExpr, Model, RevisedWorkspace, Sense, SimplexOptions, Status,
};
use replica_placement::obs::{self, ObsMode};
use replica_placement::workloads::failures::sample_node_failure;
use replica_placement::workloads::scenarios::feasible_bandwidth_instance;

/// Serialises mode flips across the test binary's threads.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` twice — once per mode — and returns both results. Holds the
/// mode lock for the whole pair so a parallel test cannot flip the mode
/// mid-run, and always restores `Off`.
fn under_both_modes<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = MODE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    obs::set_mode(ObsMode::Off);
    let off = f();
    obs::set_mode(ObsMode::Full);
    let full = f();
    obs::set_mode(ObsMode::Off);
    (off, full)
}

/// One encoded variable: (bounded?, lower, range-above-lower, obj 0..=10 → −5..=5).
type RawVar = (u32, u32, u32, u32);
/// One encoded constraint: (coefficients 0..=6 → −3..=3, cmp, rhs 0..=18 → −6..=12).
type RawCon = (Vec<u32>, u32, u32);

fn model_strategy(
    max_vars: usize,
    max_cons: usize,
) -> impl Strategy<Value = (Vec<RawVar>, Vec<RawCon>, u32)> {
    (1..=max_vars, 0..=max_cons).prop_flat_map(move |(n, m)| {
        let var = (0u32..=2, 0u32..=3, 1u32..=6, 0u32..=10);
        let con = (collection::vec(0u32..=6, n), 0u32..=2, 0u32..=18);
        (
            collection::vec(var, n),
            collection::vec(con, m),
            0u32..=1, // maximise?
        )
    })
}

fn build_model(spec: &(Vec<RawVar>, Vec<RawCon>, u32)) -> Model {
    let (vars, cons, maximise) = spec;
    let mut model = Model::new(if *maximise == 1 {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let ids: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &(bounded, lower, range, obj))| {
            let lower = f64::from(lower);
            let upper = (bounded != 0).then(|| lower + f64::from(range));
            model.add_var(format!("x{i}"), lower, upper, f64::from(obj) - 5.0)
        })
        .collect();
    for (c, (coeffs, cmp, rhs)) in cons.iter().enumerate() {
        let mut expr = LinExpr::new();
        for (&var, &coeff) in ids.iter().zip(coeffs) {
            let coeff = f64::from(coeff) - 3.0;
            if coeff != 0.0 {
                expr.add_term(coeff, var);
            }
        }
        if expr.is_empty() {
            continue;
        }
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        model.add_constraint(format!("c{c}"), expr, cmp, f64::from(*rhs) - 6.0);
    }
    model
}

/// Everything observable about one cold revised solve, bit-exact.
#[derive(Debug, PartialEq)]
struct SolveFingerprint {
    status: Status,
    objective_bits: u64,
    value_bits: Vec<u64>,
    iterations: usize,
    refactorisations: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// A cold revised solve takes the same pivot path under `Full` as
    /// under `Off`: same status, bit-identical objective and point,
    /// same iteration and refactorisation counts. The per-phase wall
    /// times are deliberately *outside* the fingerprint (they are real
    /// clock readings and differ run to run) — instead the test pins
    /// the gating itself: all-zero under `Off`.
    #[test]
    fn instrumented_lp_solves_are_bit_identical(spec in model_strategy(6, 5)) {
        let model = build_model(&spec);
        let ((off, off_phases), (full, _full_phases)) = under_both_modes(|| {
            let mut workspace = RevisedWorkspace::new();
            let solution = workspace.solve_cold(&model, &SimplexOptions::default());
            let stats = workspace.last_stats();
            (
                SolveFingerprint {
                    status: solution.status,
                    objective_bits: solution.objective.to_bits(),
                    value_bits: solution.values.iter().map(|v| v.to_bits()).collect(),
                    iterations: stats.iterations(),
                    refactorisations: stats.refactorisations,
                },
                stats.phases,
            )
        });
        prop_assert_eq!(off, full, "mode changed the solve on\n{}", model);
        prop_assert!(
            off_phases.is_zero(),
            "Off-mode solve recorded phase time: {:?}", off_phases
        );
    }

    /// The warm path — a cold solve followed by a right-hand-side
    /// perturbation and a warm re-solve in the same workspace — is
    /// bit-identical across modes too: the profiler's per-solve reset
    /// and the flight recorder's record hook ride `finish_solve`, so
    /// they must not perturb the warm validity check or the dual
    /// cleanup pivots.
    #[test]
    fn instrumented_warm_resolves_are_bit_identical(spec in model_strategy(6, 5), bump in 1u32..=4) {
        let model = build_model(&spec);
        let (off, full) = under_both_modes(|| {
            let mut workspace = RevisedWorkspace::new();
            let options = SimplexOptions::default();
            let mut model = model.clone();
            solve_lp_revised_reusing(&model, &options, &mut workspace);
            let first_constraint = model.constraint_ids().next();
            let warm = match first_constraint {
                Some(id) => {
                    let rhs = model.constraint(id).rhs;
                    model.set_rhs(id, rhs + f64::from(bump));
                    solve_lp_revised_reusing(&model, &options, &mut workspace)
                }
                // No constraints: the re-solve is the interesting call
                // all the same (bound-only models warm-start too).
                None => solve_lp_revised_reusing(&model, &options, &mut workspace),
            };
            let stats = workspace.last_stats();
            (
                SolveFingerprint {
                    status: warm.status,
                    objective_bits: warm.objective.to_bits(),
                    value_bits: warm.values.iter().map(|v| v.to_bits()).collect(),
                    iterations: stats.iterations(),
                    refactorisations: stats.refactorisations,
                },
                stats.warm.as_str(),
            )
        });
        prop_assert_eq!(off, full, "mode changed the warm re-solve on\n{}", model);
    }

    /// One full experiment trial — tree generation, all heuristics, the
    /// LP lower bound — is bit-identical across modes.
    #[test]
    fn instrumented_trials_are_bit_identical(seed in 0u64..1000, tree_index in 0usize..4) {
        let config = ExperimentConfig {
            seed,
            ..ExperimentConfig::smoke_test()
        };
        let (off, full) = under_both_modes(|| run_single_trial(&config, 0.4, tree_index));
        prop_assert_eq!(off.problem_size, full.problem_size);
        prop_assert_eq!(off.heuristic_costs, full.heuristic_costs);
        prop_assert_eq!(
            off.lp_bound.map(f64::to_bits),
            full.lp_bound.map(f64::to_bits),
            "mode changed the LP bound (seed {}, tree {})", seed, tree_index
        );
    }

    /// LP-guided rounding — the LP solve plus the full move/repair
    /// pipeline — picks the same strategy and produces the identical
    /// placement under both modes.
    #[test]
    fn instrumented_lp_guided_rounding_is_identical(seed in 0u64..500) {
        let problem = feasible_bandwidth_instance(40, 0.4, seed);
        let (off, full) = under_both_modes(|| {
            lp_guided_with(&problem, &IlpOptions::default())
                .map(|p| (p.cost(&problem), p.replicas().to_vec()))
        });
        prop_assert_eq!(off, full, "mode changed the rounding on seed {}", seed);
    }

    /// Failure injection and repair — the escalation ladder, re-homing,
    /// degraded-mode drops — end in the identical outcome across modes.
    #[test]
    fn instrumented_failure_repair_is_identical(seed in 0u64..500) {
        let problem = feasible_bandwidth_instance(40, 0.4, seed);
        if let Some(placement) = Heuristic::MixedBest.run(&problem) {
            let failure = sample_node_failure(&problem, seed ^ 0xFA11);
            let (off, full) = under_both_modes(|| {
                let (platform, outcome) =
                    inject_and_repair(&problem, &placement, Policy::Multiple, &[failure]);
                (
                    outcome.is_full(),
                    outcome.served_fraction().to_bits(),
                    outcome.placement().cost(platform.problem()),
                    outcome.placement().replicas().to_vec(),
                )
            });
            prop_assert_eq!(off, full, "mode changed the repair on seed {}", seed);
        }
    }
}
