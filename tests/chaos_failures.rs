//! The chaos harness: 200 seeded random single-node / single-link
//! failures against a paper-scale (`s = 400`) deployment. Every run
//! must end in a machine-verified outcome — a placement fully valid
//! over the survivors or a correct degraded report — with no panic
//! reachable from the public solve/repair APIs.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use replica_placement::core::{inject_and_repair, Heuristic, Policy};
use replica_placement::workloads::failures::{sample_link_failure, sample_node_failure};
use replica_placement::workloads::platform::paper_scale_instance_sized;
use replica_placement::workloads::{paper_scale_instance, PlatformKind};

#[test]
fn two_hundred_single_failures_all_yield_verified_outcomes() {
    let problem = paper_scale_instance(PlatformKind::default_heterogeneous(), 0.4, 31);
    let placement = Heuristic::MixedBest
        .run(&problem)
        .expect("the healthy paper-scale instance must place");

    let mut full = 0usize;
    let mut degraded = 0usize;
    for trial in 0..200u64 {
        // Even trials crash a server, odd trials sever a link; every
        // draw is reproducible from the trial number alone.
        let failure = if trial.is_multiple_of(2) {
            sample_node_failure(&problem, 0xC4A05 ^ trial)
        } else {
            sample_link_failure(&problem, 0xC4A05 ^ trial)
        };
        let (platform, outcome) =
            inject_and_repair(&problem, &placement, Policy::Multiple, &[failure]);
        assert!(
            outcome.verify(&platform, Policy::Multiple),
            "trial {trial}: {failure} produced an unverifiable outcome"
        );
        let fraction = outcome.served_fraction();
        assert!((0.0..=1.0).contains(&fraction), "trial {trial}");
        if outcome.is_full() {
            assert_eq!(fraction, 1.0, "trial {trial}");
            full += 1;
        } else {
            degraded += 1;
        }
    }
    assert_eq!(full + degraded, 200);
    // Single server crashes are usually absorbable at this load...
    assert!(full > 0, "no failure was ever fully repaired");
    // ...while severed client uplinks can only degrade.
    assert!(degraded > 0, "no failure ever forced a degraded report");
}

#[test]
fn chaos_covers_every_policy_on_a_lighter_platform() {
    // A tamer regime (s = 60, homogeneous, λ = 0.3) where the Closest
    // and Upwards heuristics also place, so their repair paths are
    // exercised under the same seeded single failures.
    let problem = paper_scale_instance_sized(60, PlatformKind::default_homogeneous(), 0.3, 7);
    let mut policies_exercised = std::collections::HashSet::new();
    for heuristic in Heuristic::ALL {
        let Some(placement) = heuristic.run(&problem) else {
            continue;
        };
        let policy = heuristic.policy();
        for trial in 0..40u64 {
            let failure = if trial.is_multiple_of(2) {
                sample_node_failure(&problem, 0xD1CE ^ trial)
            } else {
                sample_link_failure(&problem, 0xD1CE ^ trial)
            };
            let (platform, outcome) = inject_and_repair(&problem, &placement, policy, &[failure]);
            assert!(
                outcome.verify(&platform, policy),
                "{heuristic:?} trial {trial}: {failure}"
            );
        }
        policies_exercised.insert(policy);
    }
    assert!(
        policies_exercised.contains(&Policy::Multiple),
        "MG must place the light instance"
    );
}
