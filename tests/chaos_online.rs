//! The online chaos harness: a long seeded churn trace — arrivals,
//! departures, demand drift, failures and paired recoveries — driven
//! through a live [`PlacementEngine`] per policy. Every apply must end
//! in a machine-verified incumbent (the engines run at
//! [`Paranoia::Full`], so an unverified placement can never be
//! observed) and the outcome/rung/generation bookkeeping must account
//! for every delta. The release-mode sibling (`--smoke-online` in
//! `rp-bench`) drives the same engine through 2000 deltas at `s = 400`;
//! this debug-friendly harness keeps the instance small enough to run
//! under `cargo test`.

use std::time::Duration;

use replica_placement::core::InstanceDelta;
use replica_placement::lp::SolveBudget;
use replica_placement::online::Paranoia;
use replica_placement::prelude::*;
use replica_placement::workloads::platform::paper_scale_instance_sized;
use replica_placement::workloads::{churn_trace, ChurnConfig};

const DELTAS: usize = 300;

/// Drives one engine through the shared trace and checks every
/// invariant the engine promises after every single apply.
fn churn_policy(policy: Policy, budget: SolveBudget) {
    let problem = paper_scale_instance_sized(80, PlatformKind::default_heterogeneous(), 0.4, 11);
    let trace = churn_trace(&problem, &ChurnConfig::new(), DELTAS, 0xC0DE);
    assert_eq!(trace.len(), DELTAS);

    let mut engine = PlacementEngine::new(problem, policy).with_paranoia(Paranoia::Full);
    assert!(engine.verify_incumbent(), "{policy}: initial incumbent");

    let mut absorbed = 0u64;
    let mut deferred = 0usize;
    for (i, entry) in trace.iter().enumerate() {
        let generation_before = engine.generation();
        match engine.apply(entry.delta, budget) {
            ApplyOutcome::Applied { generation, .. } => {
                absorbed += 1;
                assert_eq!(generation, generation_before + 1, "{policy} delta {i}");
                assert!(engine.is_fully_served(), "{policy} delta {i}");
            }
            ApplyOutcome::Degraded {
                generation,
                unserved,
                ..
            } => {
                absorbed += 1;
                assert_eq!(generation, generation_before + 1, "{policy} delta {i}");
                assert!(unserved >= 1, "{policy} delta {i}: degraded but all served");
            }
            ApplyOutcome::Deferred => {
                deferred += 1;
                assert_eq!(
                    engine.generation(),
                    generation_before,
                    "{policy} delta {i}: a deferred apply must not advance the incumbent"
                );
            }
        }
        assert!(engine.verify_incumbent(), "{policy} delta {i}");
    }

    assert_eq!(absorbed as usize + deferred, DELTAS, "{policy}");
    assert_eq!(engine.generation(), absorbed, "{policy}");
    assert_eq!(engine.rung_counts().total(), absorbed, "{policy}");
    assert_eq!(engine.deferred_len(), deferred, "{policy}");

    // Drain the backpressure queue with the clock no longer ticking:
    // each deferred delta gets exactly one more attempt and must now
    // land on a rung (rung 4 is total, so nothing can defer again).
    let outcomes = engine.retry_deferred(SolveBudget::UNLIMITED);
    assert_eq!(outcomes.len(), deferred, "{policy}");
    assert!(
        outcomes.iter().all(|o| !o.is_deferred()),
        "{policy}: unlimited retry must absorb every deferred delta"
    );
    assert_eq!(engine.deferred_len(), 0, "{policy}");
    assert!(engine.verify_incumbent(), "{policy}: after retry_deferred");
}

#[test]
fn closest_survives_the_churn_trace() {
    churn_policy(Policy::Closest, SolveBudget::UNLIMITED);
}

#[test]
fn upwards_survives_the_churn_trace() {
    churn_policy(Policy::Upwards, SolveBudget::UNLIMITED);
}

#[test]
fn multiple_survives_the_churn_trace() {
    churn_policy(Policy::Multiple, SolveBudget::UNLIMITED);
}

#[test]
fn a_tight_budget_defers_instead_of_corrupting() {
    // 5 ms per delta in a debug build forces a mix of absorbed and
    // deferred applies; the harness asserts rollback exactness and the
    // final drain either way.
    churn_policy(
        Policy::Multiple,
        SolveBudget::with_deadline(Duration::from_millis(5)),
    );
}

#[test]
fn the_trace_is_a_genuine_chaos_mix() {
    let problem = paper_scale_instance_sized(80, PlatformKind::default_heterogeneous(), 0.4, 11);
    let trace = churn_trace(&problem, &ChurnConfig::new(), DELTAS, 0xC0DE);
    let mut population = 0usize;
    let mut demand = 0usize;
    let mut capacity = 0usize;
    let mut failures = 0usize;
    for entry in &trace {
        match entry.delta {
            InstanceDelta::ClientArrived { .. } | InstanceDelta::ClientDeparted { .. } => {
                population += 1
            }
            InstanceDelta::DemandChanged { .. } => demand += 1,
            InstanceDelta::CapacityChanged { .. } => capacity += 1,
            InstanceDelta::Failure(_) => failures += 1,
        }
    }
    assert!(population > 0, "no arrivals/departures in the trace");
    assert!(demand > 0, "no demand churn in the trace");
    assert!(capacity > 0, "no capacity churn in the trace");
    assert!(failures > 0, "no failures in the trace");
}
