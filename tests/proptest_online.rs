//! Property-based churn against the online engine: for arbitrary
//! seeded delta sequences on randomized instances, the incumbent must
//! verify after every apply, a forced budget miss must roll back
//! bit-identically, and replaying a checkpoint must reproduce the
//! generation/placement history exactly.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use std::time::Duration;

use proptest::prelude::*;

use replica_placement::lp::SolveBudget;
use replica_placement::online::Paranoia;
use replica_placement::prelude::*;
use replica_placement::workloads::{churn_trace, generate_problem, generate_tree, ChurnConfig};

/// A random instance from one seed: tree shape, platform family and
/// load factor all derive from it (same construction as the failure
/// proptests, sized so a case stays in microseconds).
fn instance_from_seed(seed: u64) -> ProblemInstance {
    let num_nodes = 2 + (seed % 6) as usize;
    let num_clients = 2 + ((seed >> 8) % 7) as usize;
    let tree = generate_tree(
        &TreeGenConfig {
            num_nodes,
            num_clients,
            shape: TreeShape::RandomAttachment,
        },
        seed,
    );
    let platform = if seed.is_multiple_of(2) {
        PlatformKind::Homogeneous {
            capacity: 3 + (seed >> 16) % 10,
        }
    } else {
        PlatformKind::HeterogeneousUniform { min: 2, max: 12 }
    };
    let lambda = 0.2 + ((seed >> 24) % 90) as f64 / 100.0;
    generate_problem(tree, &WorkloadConfig::new(platform, lambda), seed ^ 0x5555)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: any churn sequence of up to 32 deltas,
    /// applied under an unlimited budget, leaves a machine-verified
    /// incumbent after **every** apply, under every policy, with the
    /// outcome/generation bookkeeping accounting for every delta.
    #[test]
    fn every_apply_leaves_a_verified_incumbent(
        instance_seed in 0u64..1_000_000,
        trace_seed in 0u64..1_000_000,
        trace_len in 1usize..=32,
    ) {
        let problem = instance_from_seed(instance_seed);
        let trace = churn_trace(&problem, &ChurnConfig::new(), trace_len, trace_seed);
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(problem.clone(), policy)
                .with_paranoia(Paranoia::Full);
            prop_assert!(engine.verify_incumbent(), "{policy}: initial incumbent");
            let mut absorbed = 0u64;
            for entry in &trace {
                let outcome = engine.apply(entry.delta, SolveBudget::UNLIMITED);
                prop_assert!(
                    !outcome.is_deferred(),
                    "{policy}: unlimited budget deferred {:?}", entry.delta
                );
                absorbed += 1;
                prop_assert_eq!(outcome.generation(), Some(absorbed), "{}", policy);
                prop_assert!(
                    engine.verify_incumbent(),
                    "{policy} after {:?}", entry.delta
                );
            }
            prop_assert_eq!(engine.generation(), absorbed, "{}", policy);
            prop_assert_eq!(engine.rung_counts().total(), absorbed, "{}", policy);
        }
    }

    /// A zero budget can never be met, so every apply must defer — and
    /// the rollback must be bit-identical: placement, unserved set,
    /// generation and full-service flag exactly as before the attempt.
    #[test]
    fn forced_budget_misses_roll_back_bit_identically(
        instance_seed in 0u64..1_000_000,
        trace_seed in 0u64..1_000_000,
        trace_len in 1usize..=8,
    ) {
        let problem = instance_from_seed(instance_seed);
        let trace = churn_trace(&problem, &ChurnConfig::new(), trace_len, trace_seed);
        let zero = SolveBudget::with_deadline(Duration::ZERO);
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(problem.clone(), policy)
                .with_paranoia(Paranoia::Full);
            let placement_before = engine.incumbent().placement.clone();
            let unserved_before = engine.incumbent().unserved.clone();
            let generation_before = engine.generation();
            let fully_served_before = engine.is_fully_served();
            for (i, entry) in trace.iter().enumerate() {
                let outcome = engine.apply(entry.delta, zero);
                prop_assert!(outcome.is_deferred(), "{policy} delta {i}");
                prop_assert_eq!(&engine.incumbent().placement, &placement_before,
                    "{} delta {}", policy, i);
                prop_assert_eq!(&engine.incumbent().unserved, &unserved_before,
                    "{} delta {}", policy, i);
                prop_assert_eq!(engine.generation(), generation_before,
                    "{} delta {}", policy, i);
                prop_assert_eq!(engine.is_fully_served(), fully_served_before,
                    "{} delta {}", policy, i);
                prop_assert!(engine.verify_incumbent(), "{policy} delta {i}");
            }
            // The deferred queue holds every delta in arrival order and
            // drains fully once the clock stops mattering.
            prop_assert_eq!(engine.deferred_len(), trace.len(), "{}", policy);
            let outcomes = engine.retry_deferred(SolveBudget::UNLIMITED);
            prop_assert_eq!(outcomes.len(), trace.len(), "{}", policy);
            prop_assert!(outcomes.iter().all(|o| !o.is_deferred()), "{policy}");
            prop_assert_eq!(engine.deferred_len(), 0, "{}", policy);
            prop_assert!(engine.verify_incumbent(), "{policy}");
        }
    }

    /// Checkpoint/replay determinism: restoring a checkpoint and
    /// re-applying the same deltas reproduces the exact generation and
    /// placement history of the first pass.
    #[test]
    fn checkpoint_replay_reproduces_the_history(
        instance_seed in 0u64..1_000_000,
        trace_seed in 0u64..1_000_000,
        trace_len in 1usize..=16,
    ) {
        let problem = instance_from_seed(instance_seed);
        let trace = churn_trace(&problem, &ChurnConfig::new(), trace_len, trace_seed);
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(problem.clone(), policy)
                .with_paranoia(Paranoia::Full);
            let checkpoint = engine.checkpoint();
            let first: Vec<(u64, Placement)> = trace
                .iter()
                .map(|entry| {
                    engine.apply(entry.delta, SolveBudget::UNLIMITED);
                    (engine.generation(), engine.incumbent().placement.clone())
                })
                .collect();

            engine.restore(&checkpoint);
            prop_assert_eq!(engine.generation(), checkpoint.generation(), "{}", policy);
            let replay: Vec<(u64, Placement)> = trace
                .iter()
                .map(|entry| {
                    engine.apply(entry.delta, SolveBudget::UNLIMITED);
                    (engine.generation(), engine.incumbent().placement.clone())
                })
                .collect();
            prop_assert_eq!(first, replay, "{}", policy);
        }
    }
}
