//! Differential property tests pinning the **problem-variant
//! formulations** — bandwidth-constrained links and multi-object
//! workloads — to the dense-tableau oracle, plus the equilibration
//! round-trip property.
//!
//! The bandwidth and multi-object models are exactly where the sparse
//! revised engine leaves the near-unimodular comfort zone: link-flow
//! recurrences, shared capacity/bandwidth rows and wide-range
//! coefficients. Every random instance must still produce the same
//! feasibility verdict and objective from both engines, and the
//! geometric-mean equilibration pass must be a pure change of units:
//! scaled solve + exact (power-of-two) unscaling ≡ unscaled solve, on
//! well- and ill-scaled families alike.
//!
//! (Values are generated as small unsigned integers — the vendored
//! proptest stand-in only implements unsigned range strategies.)

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use proptest::prelude::*;

use replica_placement::core::ilp::{
    build_model, build_multi_model, multi_lower_bound, BoundKind, Integrality,
};
use replica_placement::core::multi::{solve_multi_ilp, MultiObjectProblem};
use replica_placement::core::{Policy, ProblemInstance};
use replica_placement::lp::{
    solve_lp, solve_lp_revised, solve_lp_revised_with, Scaling, SimplexOptions, Status,
};
use replica_placement::tree::{TreeBuilder, TreeNetwork};

/// Encoded tree + platform: node parent choices, per-client
/// (parent choice, requests), per-node (capacity, decade code), per-node
/// uplink bandwidth code (`>= 10` → unbounded).
type ScenarioSpec = (Vec<u32>, Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<u32>);

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(nodes, clients)| {
        (
            collection::vec(0u32..=10, nodes - 1),
            collection::vec((0u32..=10, 0u32..=5), clients),
            collection::vec((1u32..=8, 0u32..=2), nodes),
            collection::vec(0u32..=15, nodes),
        )
    })
}

fn build_tree(parents: &[u32], clients: &[(u32, u32)]) -> TreeNetwork {
    let mut b = TreeBuilder::new();
    let root = b.add_root();
    let mut nodes = vec![root];
    for (i, &choice) in parents.iter().enumerate() {
        let parent = nodes[(choice as usize) % (i + 1)];
        nodes.push(b.add_node(parent));
    }
    for &(choice, _) in clients {
        b.add_client(nodes[(choice as usize) % nodes.len()]);
    }
    b.build().expect("generated trees are well-formed")
}

/// Decodes a spec into a bandwidth-constrained instance. With `wide`
/// the capacities (and costs) pick up per-node decade factors, which
/// makes the capacity rows ill-scaled exactly like the wide-range
/// scenario family.
fn build_bandwidth_problem(spec: &ScenarioSpec, wide: bool) -> ProblemInstance {
    let (parents, clients, platform, bw_codes) = spec;
    let tree = build_tree(parents, clients);
    let requests: Vec<u64> = clients.iter().map(|&(_, r)| u64::from(r)).collect();
    let capacities: Vec<u64> = platform
        .iter()
        .map(|&(cap, decade)| {
            let scale = if wide { 100u64.pow(decade) } else { 1 };
            u64::from(cap) * scale
        })
        .collect();
    let node_links: Vec<Option<u64>> = bw_codes
        .iter()
        .enumerate()
        .map(|(index, &code)| {
            // The root (index 0) has no uplink; its entry is ignored.
            (index > 0 && code < 10).then_some(u64::from(code))
        })
        .collect();
    ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities.clone())
        .storage_costs(capacities)
        .node_link_bandwidths(node_links)
        .build()
}

/// Encoded multi-object extension: per-client per-object requests.
type MultiSpec = (ScenarioSpec, Vec<Vec<u32>>);

fn multi_strategy() -> impl Strategy<Value = MultiSpec> {
    (scenario_strategy(), 1usize..=3).prop_flat_map(|(spec, objects)| {
        let clients = spec.1.len();
        (
            Just(spec),
            collection::vec(collection::vec(0u32..=4, clients), objects),
        )
    })
}

fn build_multi_problem(spec: &MultiSpec) -> MultiObjectProblem {
    let ((parents, clients, platform, bw_codes), object_requests) = spec;
    let tree = build_tree(parents, clients);
    let capacities: Vec<u64> = platform
        .iter()
        .map(|&(cap, _)| u64::from(cap) * 2)
        .collect();
    let requests: Vec<Vec<u64>> = object_requests
        .iter()
        .map(|object| object.iter().map(|&r| u64::from(r)).collect())
        .collect();
    // Per-object costs: capacity plus an object-dependent twist so the
    // objects disagree about the cheap nodes.
    let storage_costs: Vec<Vec<u64>> = (0..requests.len())
        .map(|k| {
            capacities
                .iter()
                .enumerate()
                .map(|(j, &w)| w + ((j + k) % 3) as u64)
                .collect()
        })
        .collect();
    let node_links: Vec<Option<u64>> = bw_codes
        .iter()
        .enumerate()
        .map(|(index, &code)| (index > 0 && code < 10).then_some(u64::from(code)))
        .collect();
    let num_clients = clients.len();
    MultiObjectProblem::new(tree, requests, capacities, storage_costs)
        .with_link_bandwidths(vec![None; num_clients], node_links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Bandwidth-constrained LPs: the revised engine and the dense
    /// tableau must agree on feasibility and objective, under every
    /// policy's formulation, on well- and ill-scaled platforms.
    #[test]
    fn bandwidth_lps_agree_between_revised_and_dense(spec in scenario_strategy()) {
        for wide in [false, true] {
            let problem = build_bandwidth_problem(&spec, wide);
            for policy in [Policy::Multiple, Policy::Upwards, Policy::Closest] {
                let formulation = build_model(&problem, policy, Integrality::RationalBound);
                let dense = solve_lp(&formulation.model);
                let revised = solve_lp_revised(&formulation.model);
                prop_assert_ne!(dense.status, Status::IterationLimit);
                prop_assert_ne!(revised.status, Status::IterationLimit);
                prop_assert_eq!(dense.status, revised.status, "{policy} wide={}", wide);
                if dense.status == Status::Optimal {
                    let tol = 1e-6 * dense.objective.abs().max(1.0);
                    prop_assert!(
                        (dense.objective - revised.objective).abs() < tol,
                        "{}: dense {} vs revised {} on\n{}",
                        policy, dense.objective, revised.objective, formulation.model
                    );
                    prop_assert!(
                        formulation.model.is_feasible(&revised.values, 1e-6),
                        "revised returned an infeasible point for {policy}"
                    );
                }
            }
        }
    }

    /// Multi-object LPs (shared capacities and links, per-object z
    /// variables): revised ≡ dense on the rational relaxation.
    #[test]
    fn multi_object_lps_agree_between_revised_and_dense(spec in multi_strategy()) {
        let problem = build_multi_problem(&spec);
        let formulation = build_multi_model(&problem, Integrality::RationalBound);
        let dense = solve_lp(&formulation.model);
        let revised = solve_lp_revised(&formulation.model);
        prop_assert_ne!(dense.status, Status::IterationLimit);
        prop_assert_ne!(revised.status, Status::IterationLimit);
        prop_assert_eq!(dense.status, revised.status);
        if dense.status == Status::Optimal {
            let tol = 1e-6 * dense.objective.abs().max(1.0);
            prop_assert!(
                (dense.objective - revised.objective).abs() < tol,
                "dense {} vs revised {} on\n{}",
                dense.objective, revised.objective, formulation.model
            );
            prop_assert!(formulation.model.is_feasible(&revised.values, 1e-6));
        }
    }

    /// Equilibration round-trip: a scaled solve followed by the exact
    /// postsolve unscaling must reproduce the unscaled solve's status
    /// and objective, and its point must satisfy the *original*
    /// (unscaled) model — on both the well-scaled and the wide-range
    /// ill-scaled family.
    #[test]
    fn equilibration_round_trips_on_scenario_lps(spec in scenario_strategy()) {
        for wide in [false, true] {
            let problem = build_bandwidth_problem(&spec, wide);
            let formulation = build_model(&problem, Policy::Multiple, Integrality::RationalBound);
            let solve = |scaling| {
                solve_lp_revised_with(
                    &formulation.model,
                    &SimplexOptions { scaling, ..SimplexOptions::default() },
                )
            };
            let scaled = solve(Scaling::Geometric);
            let unscaled = solve(Scaling::Off);
            prop_assert_eq!(
                scaled.status, unscaled.status,
                "scaling changed the status (wide={}) on\n{}", wide, formulation.model
            );
            if scaled.status == Status::Optimal {
                let tol = 1e-6 * unscaled.objective.abs().max(1.0);
                prop_assert!(
                    (scaled.objective - unscaled.objective).abs() < tol,
                    "scaled {} vs unscaled {} (wide={}) on\n{}",
                    scaled.objective, unscaled.objective, wide, formulation.model
                );
                prop_assert!(
                    formulation.model.is_feasible(&scaled.values, 1e-6),
                    "postsolved scaled point violates the original model"
                );
            }
        }
    }
}

proptest! {
    // MILP searches are costlier; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The multi-object bounds sandwich the exact optimum:
    /// rational ≤ mixed ≤ exact cost, and an infeasible relaxation
    /// implies an infeasible exact search.
    #[test]
    fn multi_object_bounds_sandwich_the_exact_optimum(spec in multi_strategy()) {
        let problem = build_multi_problem(&spec);
        let rational = multi_lower_bound(&problem, BoundKind::Rational);
        let exact = solve_multi_ilp(&problem);
        match (&rational, &exact) {
            (None, Some(placement)) => {
                prop_assert!(
                    false,
                    "relaxation infeasible but exact found cost {}",
                    placement.cost(&problem)
                );
            }
            (Some(bound), Some(placement)) => {
                let cost = placement.cost(&problem) as f64;
                prop_assert!(
                    *bound <= cost + 1e-6,
                    "rational bound {} exceeds exact cost {}", bound, cost
                );
                let mixed = multi_lower_bound(&problem, BoundKind::Mixed)
                    .expect("mixed relaxation of a feasible instance");
                prop_assert!(mixed <= cost + 1e-6, "mixed bound {} exceeds {}", mixed, cost);
                prop_assert!(mixed + 1e-6 >= *bound, "mixed {} below rational {}", mixed, bound);
            }
            // Exact may fail on a feasible relaxation only via the node
            // limit; both-None is plain infeasibility.
            _ => {}
        }
    }
}
