//! Property tests pinning the allocation-free rewrites to their naive
//! reference semantics: the lazy iterator traversal primitives, the O(1)
//! ancestor/distance checks, the dense load/flow accounting and the
//! reusable solver state must agree **exactly** with the straightforward
//! `Vec` / `BTreeMap` / parent-walk implementations they replaced, on
//! arbitrary random trees.

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use std::collections::BTreeMap;

use proptest::prelude::*;

use replica_placement::lp::{
    solve_lp, solve_lp_reusing, Cmp, LinExpr, Model, SimplexOptions, SimplexWorkspace, Status,
};
use replica_placement::prelude::*;
use replica_placement::tree::{LinkId, NodeId, TreeBuilder};

/// Strategy: a random tree described by parent pointers (same shape as
/// in `proptest_invariants.rs`).
fn tree_strategy(max_nodes: usize, max_clients: usize) -> impl Strategy<Value = TreeNetwork> {
    (1..=max_nodes, 1..=max_clients)
        .prop_flat_map(move |(nodes, clients)| {
            let node_parents = proptest::collection::vec(0usize..max_nodes, nodes - 1);
            let client_parents = proptest::collection::vec(0usize..nodes, clients);
            (node_parents, client_parents)
        })
        .prop_map(|(node_parents, client_parents)| {
            let mut builder = TreeBuilder::new();
            let mut handles = vec![builder.add_root()];
            for (i, raw) in node_parents.into_iter().enumerate() {
                let parent = handles[raw % (i + 1)];
                handles.push(builder.add_node(parent));
            }
            for parent in client_parents {
                builder.add_client(handles[parent]);
            }
            builder.build().expect("constructed trees are valid")
        })
}

fn instance_strategy() -> impl Strategy<Value = ProblemInstance> {
    (tree_strategy(10, 10), 1u64..=12)
        .prop_flat_map(|(tree, capacity)| {
            let clients = tree.num_clients();
            (
                Just(tree),
                Just(capacity),
                proptest::collection::vec(0u64..=10, clients),
            )
        })
        .prop_map(|(tree, capacity, requests)| {
            ProblemInstance::replica_counting(tree, requests, capacity)
        })
}

/// Reference ancestor walk over parent pointers.
fn naive_ancestors(tree: &TreeNetwork, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut current = tree.parent_of_node(node);
    while let Some(n) = current {
        out.push(n);
        current = tree.parent_of_node(n);
    }
    out
}

/// Reference depth-first preorder subtree collection.
fn naive_subtree_nodes(tree: &TreeNetwork, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        out.push(n);
        for &child in tree.child_nodes(n).iter().rev() {
            stack.push(child);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ancestor_iterators_match_the_parent_walk(tree in tree_strategy(14, 10)) {
        for node in tree.node_ids() {
            let reference = naive_ancestors(&tree, node);
            prop_assert_eq!(tree.ancestors_of_node_vec(node), reference.clone());
            prop_assert_eq!(tree.ancestors_of_node(node).len(), reference.len());
            let mut with_self = vec![node];
            with_self.extend(&reference);
            prop_assert_eq!(tree.self_and_ancestors_vec(node), with_self);
        }
        for client in tree.client_ids() {
            let parent = tree.parent_of_client(client);
            let mut reference = vec![parent];
            reference.extend(naive_ancestors(&tree, parent));
            prop_assert_eq!(tree.ancestors_of_client_vec(client), reference);
        }
    }

    #[test]
    fn interval_stamps_match_walked_ancestry(tree in tree_strategy(14, 10)) {
        for a in tree.node_ids() {
            let ancestry = tree.self_and_ancestors_vec(a);
            for b in tree.node_ids() {
                prop_assert_eq!(
                    tree.node_is_ancestor_or_self(a, b),
                    ancestry.contains(&b),
                    "nodes {} / {}", a, b
                );
            }
        }
    }

    #[test]
    fn subtree_slices_match_the_dfs_reference(tree in tree_strategy(14, 10)) {
        for node in tree.node_ids() {
            let reference = naive_subtree_nodes(&tree, node);
            prop_assert_eq!(tree.subtree_nodes(node), &reference[..]);
            // Clients grouped by preorder of their parent, insertion
            // order within a parent — exactly the old collection order.
            let mut clients = Vec::new();
            for &n in &reference {
                clients.extend_from_slice(tree.child_clients(n));
            }
            prop_assert_eq!(tree.subtree_clients(node), &clients[..]);
        }
    }

    #[test]
    fn distances_and_paths_match_hop_counting(tree in tree_strategy(14, 10)) {
        for client in tree.client_ids() {
            // Walk up from the client, counting hops to every ancestor.
            let mut expected: BTreeMap<NodeId, u32> = BTreeMap::new();
            let mut hops = 1u32;
            let mut current = tree.parent_of_client(client);
            loop {
                expected.insert(current, hops);
                match tree.parent_of_node(current) {
                    Some(p) => {
                        current = p;
                        hops += 1;
                    }
                    None => break,
                }
            }
            for server in tree.node_ids() {
                prop_assert_eq!(
                    tree.client_distance(client, server),
                    expected.get(&server).copied()
                );
                match tree.client_path_links_vec(client, server) {
                    Some(links) => {
                        prop_assert_eq!(links.len() as u32, expected[&server]);
                        prop_assert_eq!(links[0], LinkId::Client(client));
                        for pair in links.windows(2) {
                            // Consecutive links stack upwards.
                            let lower_top = tree.link_upper(pair[0]);
                            prop_assert_eq!(pair[1], LinkId::Node(lower_top));
                        }
                        prop_assert_eq!(tree.link_upper(*links.last().unwrap()), server);
                    }
                    None => prop_assert!(!expected.contains_key(&server)),
                }
            }
        }
    }

    #[test]
    fn depths_and_lca_match_reference_walks(tree in tree_strategy(14, 10)) {
        for node in tree.node_ids() {
            prop_assert_eq!(
                tree.node_depth(node) as usize,
                naive_ancestors(&tree, node).len()
            );
        }
        for a in tree.node_ids() {
            let ancestors_a: std::collections::HashSet<NodeId> =
                tree.self_and_ancestors(a).collect();
            for b in tree.node_ids() {
                // Reference LCA: walk b upwards until hitting a's chain.
                let mut current = b;
                let expected = loop {
                    if ancestors_a.contains(&current) {
                        break current;
                    }
                    current = tree.parent_of_node(current).unwrap();
                };
                prop_assert_eq!(tree.lowest_common_ancestor(a, b), expected);
            }
        }
    }

    #[test]
    fn dense_accounting_matches_btreemap_reference(instance in instance_strategy()) {
        let tree = instance.tree();
        for heuristic in Heuristic::ALL {
            let Some(placement) = heuristic.run(&instance) else { continue };

            // Reference server loads: a BTreeMap accumulated per
            // assignment (the pre-dense implementation).
            let mut expected_loads: BTreeMap<NodeId, u64> = BTreeMap::new();
            for client in tree.client_ids() {
                for a in placement.assignments(client) {
                    *expected_loads.entry(a.server).or_insert(0) += a.amount;
                }
            }
            let dense = placement.server_loads(tree.num_nodes());
            for (node, &load) in dense.iter() {
                prop_assert_eq!(load, expected_loads.get(&node).copied().unwrap_or(0));
            }

            // Reference link flows: accumulate every client->server path.
            let mut expected_flows: BTreeMap<LinkId, u64> = BTreeMap::new();
            for client in tree.client_ids() {
                for a in placement.assignments(client) {
                    let links = tree
                        .client_path_links_vec(client, a.server)
                        .expect("assignments lie on the client path");
                    for link in links {
                        *expected_flows.entry(link).or_insert(0) += a.amount;
                    }
                }
            }
            let dense_flows = placement.link_flows(&instance);
            let mut seen = 0usize;
            for (link, &flow) in dense_flows.iter() {
                prop_assert_eq!(flow, expected_flows.get(&link).copied().unwrap_or(0));
                seen += 1;
            }
            prop_assert_eq!(seen, tree.num_links());
        }
    }

    #[test]
    fn reused_state_matches_fresh_runs(instance in instance_strategy()) {
        use replica_placement::core::heuristics::HeuristicState;
        // One shared state across all eight heuristics (the MixedBest
        // path) must reproduce every fresh run bit for bit.
        let mut state = HeuristicState::new(&instance);
        let mut first = true;
        for heuristic in Heuristic::BASE {
            if !first {
                state.reset();
            }
            first = false;
            let solved = heuristic.run_with(&mut state);
            let fresh = heuristic.run(&instance);
            prop_assert_eq!(solved, fresh.is_some(), "{}", heuristic);
            if let Some(fresh) = fresh {
                prop_assert_eq!(state.placement(), &fresh, "{}", heuristic);
            }
        }
    }

    #[test]
    fn simplex_workspace_reuse_matches_fresh_solves(
        costs in proptest::collection::vec(1.0f64..10.0, 3..6),
        demands in proptest::collection::vec(1.0f64..20.0, 2..5),
    ) {
        let mut model = Model::minimize();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| model.add_var(format!("x{i}"), 0.0, Some(50.0), c))
            .collect();
        for (j, &demand) in demands.iter().enumerate() {
            let a = vars[j % vars.len()];
            let b = vars[(j + 1) % vars.len()];
            model.add_constraint(format!("d{j}"), LinExpr::var(a).plus(1.0, b), Cmp::Ge, demand);
        }
        let fresh = solve_lp(&model);
        // A workspace dirtied by an unrelated solve must not change the
        // result.
        let mut ws = SimplexWorkspace::new();
        let mut other = Model::minimize();
        let x = other.add_var("x", 0.0, None, 1.0);
        other.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 3.0);
        let _ = solve_lp_reusing(&other, &SimplexOptions::default(), &mut ws);
        let reused = solve_lp_reusing(&model, &SimplexOptions::default(), &mut ws);
        prop_assert_eq!(fresh.status, Status::Optimal);
        prop_assert_eq!(reused.status, Status::Optimal);
        prop_assert!((fresh.objective - reused.objective).abs() < 1e-9);
        for (a, b) in fresh.values.iter().zip(&reused.values) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
