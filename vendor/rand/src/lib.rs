//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the rand 0.8 API surface the workspace uses:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! SplitMix64 — deterministic, fast and statistically adequate for
//! seeded experiment workloads (it is the generator recommended for
//! seeding xoshiro). It is **not** cryptographically secure, exactly
//! like the real `StdRng` contract does not promise stream stability
//! across versions.

#![forbid(unsafe_code)]

/// A source of randomness, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.75)).count();
        assert!((7_000..8_000).contains(&hits), "got {hits}");
    }
}
