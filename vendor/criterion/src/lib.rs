//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the criterion API surface used by the `rp-bench`
//! benchmarks: `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples within `measurement_time`, each sample
//! timing a batch of iterations. The median sample is reported in
//! criterion's familiar `time: [low mid high]` format. Set
//! `RP_BENCH_QUICK=1` to cut warm-up and measurement times by 10x for
//! smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id, accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// The full display name of the benchmark.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var_os("RP_BENCH_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let quick = self.quick;
        BenchmarkGroup {
            name: name.into(),
            warm_up: scaled(Duration::from_secs(3), quick),
            measurement: scaled(Duration::from_secs(5), quick),
            sample_size: 100,
            quick,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let quick = self.quick;
        run_one(
            &id.into_name(),
            scaled(Duration::from_secs(3), quick),
            scaled(Duration::from_secs(5), quick),
            100,
            &mut f,
        );
    }
}

fn scaled(d: Duration, quick: bool) -> Duration {
    if quick {
        d / 10
    } else {
        d
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    quick: bool,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = scaled(d, self.quick);
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = scaled(d, self.quick);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(
            &full,
            self.warm_up,
            self.measurement,
            self.sample_size,
            &mut f,
        );
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(
            &full,
            self.warm_up,
            self.measurement,
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(name);
}

/// Times the closure handed to it by a benchmark function.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean ns/iter of each collected sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also estimating the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Aim for `sample_size` samples inside the measurement window.
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = (budget_ns / per_iter.max(1.0)).ceil().max(1.0) as u64;

        self.samples_ns.clear();
        let measure_start = Instant::now();
        while self.samples_ns.len() < self.sample_size
            && (measure_start.elapsed() < self.measurement || self.samples_ns.is_empty())
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<60} no samples collected");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<60} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(10));
        group.measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
