//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`strategy::Just`], `ProptestConfig::with_cases`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each test case is generated from a deterministic seeded
//! RNG and run; a failing case panics with the standard assertion
//! message. **No shrinking is performed** — the failing values are
//! whatever the generator produced. That keeps the implementation tiny
//! while preserving the coverage value of the property tests.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Strategy combinators and supporting types.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(usize, u64, u32, f64);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident . $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub fn __new_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    // Deterministic per-test seed: FNV-1a over the test name, mixed with
    // the case index so every case sees a fresh stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Defines property tests. Supports the subset of proptest's grammar in
/// use: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::__new_rng(stringify!($name), case);
                $(let $binding = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(
            n in 1usize..10,
            values in collection::vec(0u64..=5, 2..6),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((2..6).contains(&values.len()));
            prop_assert!(values.iter().all(|&v| v <= 5));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0usize..10, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}
