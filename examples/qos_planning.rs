//! QoS-aware planning (the Section 8 extension): how much does a
//! response-time guarantee cost?
//!
//! The same tree is solved with progressively tighter QoS bounds
//! (expressed as a maximum number of hops between a client and its
//! server, the paper's *QoS = distance* simplification). Tighter bounds
//! push replicas towards the leaves and raise the total cost — until the
//! instance becomes infeasible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qos_planning
//! ```

use replica_placement::core::ilp::{lower_bound, BoundKind};
use replica_placement::prelude::*;
use replica_placement::workloads::{generate_problem, generate_tree};

fn main() {
    // One fixed tree, decorated with the same load at every QoS level.
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(60, TreeShape::BoundedDegree { max_children: 3 }),
        424_242,
    );
    println!("planning tree: {}\n", TreeStats::compute(&tree));

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14}",
        "QoS", "UBCF cost", "MG cost", "MB cost", "LP lower bound"
    );

    for qos in [None, Some(6u32), Some(4), Some(3), Some(2), Some(1)] {
        let config = WorkloadConfig {
            platform: PlatformKind::default_heterogeneous(),
            lambda: 0.4,
            qos_hops: qos,
        };
        // Same seed at every QoS level: only the bound changes.
        let problem = generate_problem(tree.clone(), &config, 99);

        let fmt_cost = |placement: Option<Placement>| match placement {
            Some(p) => format!("{}", p.cost(&problem)),
            None => "infeasible".to_string(),
        };
        let bound = match lower_bound(&problem, BoundKind::Rational) {
            Some(b) => format!("{b:.0}"),
            None => "infeasible".to_string(),
        };
        let qos_label = match qos {
            None => "none".to_string(),
            Some(h) => format!("{h} hops"),
        };
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>14}",
            qos_label,
            fmt_cost(Heuristic::Ubcf.run(&problem)),
            fmt_cost(Heuristic::Mg.run(&problem)),
            fmt_cost(Heuristic::MixedBest.run(&problem)),
            bound
        );
    }

    println!(
        "\nTighter QoS bounds restrict each client to servers near it, so the\n\
         heuristics need more (and more expensive) replicas; at some point\n\
         even placing a replica on every node cannot satisfy the bound."
    );
}
