//! Quickstart: build a small distribution tree, solve it under all three
//! access policies, and print what each policy buys you.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use replica_placement::core::exact::solve_exhaustive;
use replica_placement::prelude::*;

fn main() {
    // A small content-distribution tree:
    //
    //                     root
    //                   /  |   \
    //               east  west  c8 (the on-site client)
    //              /    \     \
    //          east1   east2   west1
    //          clients under every hub
    let mut builder = TreeBuilder::new();
    let root = builder.add_root();
    let east = builder.add_node(root);
    let west = builder.add_node(root);
    let east1 = builder.add_node(east);
    let east2 = builder.add_node(east);
    let west1 = builder.add_node(west);
    builder.set_node_label(root, "root datacentre");
    builder.set_node_label(east, "east hub");
    builder.set_node_label(west, "west hub");

    // Clients (leaves) with their request rates.
    let mut requests = Vec::new();
    for (hub, rate) in [
        (east1, 30u64),
        (east1, 25),
        (east2, 40),
        (west1, 35),
        (west1, 20),
        (west, 15),
        (root, 10),
    ] {
        builder.add_client(hub);
        requests.push(rate);
    }
    let tree = builder.build().expect("hand-built tree is well-formed");

    println!("tree: {}", TreeStats::compute(&tree));

    // Heterogeneous servers: the root is big, hubs are medium, edge nodes
    // are small. Storage cost = capacity (the paper's Replica Cost model).
    let capacities = vec![200, 90, 80, 45, 45, 45];
    let problem = ProblemInstance::replica_cost(tree, requests, capacities);
    println!(
        "total requests = {}, total capacity = {}, load factor λ = {:.2}\n",
        problem.total_requests(),
        problem.total_capacity(),
        problem.load_factor()
    );

    // Exact optimum under each access policy (the tree is small enough
    // for the exhaustive oracle).
    println!("== exact optima ==");
    for policy in Policy::ALL {
        match solve_exhaustive(&problem, policy) {
            Some(placement) => println!(
                "{policy:>8}: cost {:>4}  replicas {:?}",
                placement.cost(&problem),
                placement
                    .replicas()
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
            ),
            None => println!("{policy:>8}: no valid solution"),
        }
    }

    // The paper's polynomial heuristics.
    println!("\n== heuristics ==");
    for heuristic in Heuristic::ALL {
        match heuristic.run(&problem) {
            Some(placement) => println!(
                "{:>28} ({}): cost {:>4}, {} replica(s)",
                heuristic.full_name(),
                heuristic.policy(),
                placement.cost(&problem),
                placement.num_replicas()
            ),
            None => println!(
                "{:>28} ({}): failed to find a solution",
                heuristic.full_name(),
                heuristic.policy()
            ),
        }
    }

    // LP-based lower bound (Section 7.1 of the paper).
    let bound = replica_placement::core::ilp::lower_bound(
        &problem,
        replica_placement::core::ilp::BoundKind::Mixed,
    )
    .expect("the instance is feasible");
    println!("\nLP-based lower bound on the replica cost: {bound:.1}");
}
