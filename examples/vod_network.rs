//! A video-on-demand (VOD) capacity-planning scenario — the kind of
//! application the paper's introduction motivates.
//!
//! A national VOD operator distributes a catalogue from a root
//! datacentre through regional and metro points of presence (PoPs) down
//! to neighbourhood aggregation switches. Each neighbourhood issues a
//! known number of concurrent streams (requests), and any PoP can be
//! equipped with a streaming replica up to its machine-room capacity.
//! The operator wants the cheapest set of replica sites, and wonders how
//! much the access policy matters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vod_network
//! ```

#![allow(clippy::disallowed_methods)] // test/driver code may unwrap freely

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use replica_placement::core::ilp::{lower_bound, BoundKind};
use replica_placement::prelude::*;

/// Builds a three-level PoP hierarchy: `regions` regional PoPs, each
/// with `metros_per_region` metro PoPs, each with `neighbourhoods`
/// client aggregation points.
fn build_vod_tree(
    regions: usize,
    metros_per_region: usize,
    neighbourhoods: usize,
    rng: &mut StdRng,
) -> (TreeNetwork, Vec<u64>, Vec<u64>) {
    let mut builder = TreeBuilder::new();
    let root = builder.add_root();
    builder.set_node_label(root, "national datacentre");

    let mut capacities = vec![12_000u64]; // the root can stream a lot
    let mut requests = Vec::new();

    for r in 0..regions {
        let region = builder.add_node(root);
        builder.set_node_label(region, format!("region {r}"));
        capacities.push(rng.gen_range(2_500..=4_000));
        for m in 0..metros_per_region {
            let metro = builder.add_node(region);
            builder.set_node_label(metro, format!("region {r} / metro {m}"));
            capacities.push(rng.gen_range(600..=1_200));
            for _ in 0..neighbourhoods {
                builder.add_client(metro);
                // Evening-peak concurrent streams per neighbourhood.
                requests.push(rng.gen_range(40..=260));
            }
        }
    }
    (
        builder.build().expect("generated tree is well-formed"),
        requests,
        capacities,
    )
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);
    let (tree, requests, capacities) = build_vod_tree(4, 3, 6, &mut rng);

    println!("VOD distribution network: {}", TreeStats::compute(&tree));
    let problem = ProblemInstance::replica_cost(tree, requests, capacities);
    println!(
        "peak streams = {}, total PoP capacity = {}, load factor λ = {:.2}\n",
        problem.total_requests(),
        problem.total_capacity(),
        problem.load_factor()
    );

    // What does each policy cost us? (Cost = provisioned streaming
    // capacity, the paper's s_j = W_j model.)
    println!(
        "{:<30} {:>10} {:>10} {:>9}",
        "heuristic", "policy", "cost", "replicas"
    );
    let mut best: Option<(Heuristic, u64)> = None;
    for heuristic in Heuristic::ALL {
        match heuristic.run(&problem) {
            Some(placement) => {
                let cost = placement.cost(&problem);
                println!(
                    "{:<30} {:>10} {:>10} {:>9}",
                    heuristic.full_name(),
                    heuristic.policy().name(),
                    cost,
                    placement.num_replicas()
                );
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some((heuristic, cost));
                }
            }
            None => println!(
                "{:<30} {:>10} {:>10} {:>9}",
                heuristic.full_name(),
                heuristic.policy().name(),
                "-",
                "-"
            ),
        }
    }

    let bound = lower_bound(&problem, BoundKind::Rational).expect("instance is feasible");
    println!("\nLP lower bound on provisioned capacity: {bound:.0}");
    if let Some((heuristic, cost)) = best {
        println!(
            "best heuristic: {} at cost {} ({:.1}% above the lower bound)",
            heuristic.full_name(),
            cost,
            (cost as f64 / bound - 1.0) * 100.0
        );
    }

    // Show the winning placement in detail.
    if let Some(placement) = Heuristic::MixedBest.run(&problem) {
        println!(
            "\nMixedBest placement ({} replica sites):",
            placement.num_replicas()
        );
        let loads = placement.server_loads(problem.tree().num_nodes());
        for &node in placement.replicas() {
            let label = problem
                .tree()
                .node_label(node)
                .unwrap_or("unnamed PoP")
                .to_string();
            println!(
                "  {label:<28} capacity {:>6}, serving {:>6} streams",
                problem.capacity(node),
                loads[node]
            );
        }
    }
}
