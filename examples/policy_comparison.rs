//! Replays the paper's motivating examples (Section 3, Figures 1–5):
//! for each construction, shows which access policies admit a solution
//! and at what cost, demonstrating that Upwards can be arbitrarily
//! better than Closest and Multiple arbitrarily better than Upwards.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use replica_placement::core::bounds::replica_counting_lower_bound;
use replica_placement::core::exact::optimal_cost;
use replica_placement::prelude::*;
use replica_placement::workloads::paper_examples;

fn describe(name: &str, problem: &ProblemInstance) {
    println!("--- {name} ---");
    println!(
        "    s = {} ({} nodes, {} clients), Σr = {}, ΣW = {}",
        problem.tree().problem_size(),
        problem.tree().num_nodes(),
        problem.tree().num_clients(),
        problem.total_requests(),
        problem.total_capacity()
    );
    if let Some(bound) = replica_counting_lower_bound(problem) {
        println!("    trivial lower bound ceil(Σr / W) = {bound}");
    }
    for policy in Policy::ALL {
        match optimal_cost(problem, policy) {
            Some(cost) => println!("    {policy:>8}: optimal cost {cost}"),
            None => println!("    {policy:>8}: no valid solution"),
        }
    }
    println!();
}

fn main() {
    println!("== Figure 1: impact of the access policy on feasibility ==\n");
    describe(
        "Figure 1(a): one client, one request (everyone succeeds)",
        &paper_examples::figure1(1, 1),
    );
    describe(
        "Figure 1(b): two unit clients (Closest fails)",
        &paper_examples::figure1(2, 1),
    );
    describe(
        "Figure 1(c): one client with two requests (only Multiple succeeds)",
        &paper_examples::figure1(1, 2),
    );

    println!("== Figure 2: Upwards versus Closest ==\n");
    for n in [2u64, 3] {
        describe(
            &format!("Figure 2 with n = {n} (Upwards needs 3, Closest needs n + 2)"),
            &paper_examples::figure2(n),
        );
    }

    println!("== Figure 3: Multiple versus Upwards (homogeneous) ==\n");
    for n in [2u64, 3] {
        describe(
            &format!("Figure 3 with n = {n} (Multiple needs n + 1, Upwards needs 2n)"),
            &paper_examples::figure3(n),
        );
    }

    println!("== Figure 4: Multiple versus Upwards (heterogeneous) ==\n");
    describe(
        "Figure 4 with n = 4, K = 10 (Multiple pays 2n, Upwards must buy the huge root)",
        &paper_examples::figure4(4, 10),
    );

    println!("== Figure 5: the trivial lower bound cannot be approached ==\n");
    describe(
        "Figure 5 with n = 4, W = 8 (bound 2, every policy needs n + 1 = 5)",
        &paper_examples::figure5(4, 8),
    );
}
