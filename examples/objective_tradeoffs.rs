//! Richer objectives (Section 8.2): storage vs. read vs. write cost.
//!
//! The paper's core problem only charges for the replicas. This example
//! evaluates the placements produced by the different heuristics under a
//! combined objective `α·storage + β·read + γ·write`, showing the
//! classical trade-off: replicas close to the clients reduce the read
//! (routing) cost but inflate the update-propagation cost, and vice
//! versa.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example objective_tradeoffs
//! ```

use replica_placement::core::objective::{combined_cost, read_cost, write_cost, ObjectiveWeights};
use replica_placement::prelude::*;
use replica_placement::workloads::{generate_problem, generate_tree};

fn main() {
    let tree = generate_tree(
        &TreeGenConfig::with_problem_size(45, TreeShape::BoundedDegree { max_children: 3 }),
        1337,
    );
    let problem = generate_problem(
        tree,
        &WorkloadConfig::new(PlatformKind::default_homogeneous(), 0.4),
        1337,
    );
    println!(
        "tree: {} | λ = {:.2}\n",
        TreeStats::compute(problem.tree()),
        problem.load_factor()
    );

    // An update rate of 20 writes per time unit, and three weightings:
    // storage only (the paper's objective), read-heavy, write-heavy.
    let updates = 20;
    let weightings = [
        (
            "storage only",
            ObjectiveWeights {
                storage: 1.0,
                read: 0.0,
                write: 0.0,
            },
        ),
        (
            "read-heavy",
            ObjectiveWeights {
                storage: 1.0,
                read: 0.2,
                write: 0.05,
            },
        ),
        (
            "write-heavy",
            ObjectiveWeights {
                storage: 1.0,
                read: 0.02,
                write: 1.0,
            },
        ),
    ];

    println!(
        "{:<28} {:>8} {:>9} {:>9} | {:>12} {:>12} {:>12}",
        "heuristic", "storage", "read", "write", weightings[0].0, weightings[1].0, weightings[2].0
    );
    let mut best: Vec<Option<(f64, Heuristic)>> = vec![None; weightings.len()];
    for heuristic in Heuristic::ALL {
        let Some(placement) = heuristic.run(&problem) else {
            continue;
        };
        let storage = placement.cost(&problem);
        let read = read_cost(&problem, &placement);
        let write = write_cost(&problem, &placement, updates);
        let mut combined = Vec::new();
        for (slot, (_, weights)) in weightings.iter().enumerate() {
            let value = combined_cost(&problem, &placement, weights, updates);
            combined.push(value);
            if best[slot].map(|(b, _)| value < b).unwrap_or(true) {
                best[slot] = Some((value, heuristic));
            }
        }
        println!(
            "{:<28} {:>8} {:>9} {:>9} | {:>12.1} {:>12.1} {:>12.1}",
            heuristic.full_name(),
            storage,
            read,
            write,
            combined[0],
            combined[1],
            combined[2]
        );
    }

    println!();
    for ((name, _), winner) in weightings.iter().zip(&best) {
        if let Some((value, heuristic)) = winner {
            println!(
                "best under `{name}`: {} ({value:.1})",
                heuristic.full_name()
            );
        }
    }
    println!(
        "\nNote how the bottom-up heuristics (many replicas near the leaves)\n\
         win once reads dominate, while sparse top-down placements win when\n\
         update propagation is the expensive part — the paper's motivation\n\
         for studying richer objective functions as future work."
    );
}
